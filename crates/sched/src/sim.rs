//! The trace-driven workload simulator.
//!
//! [`replay`] drives a [`Scheduler`] through a [`Trace`], batching the
//! events of each tick into one `process_pending` round (so departures free
//! space before same-tick arrivals claim it) and collecting a [`SimReport`]
//! of scheduler, cache and fragmentation metrics at the end. Everything is
//! deterministic: the same trace against the same scheduler configuration
//! yields the same report, which is what the policy-comparison benchmarks
//! and the acceptance tests rely on.

use crate::cache::CacheStats;
use crate::multi::{MultiFabricScheduler, MultiMetrics};
use crate::scheduler::{Outcome, Request, SchedMetrics, Scheduler};
use crate::trace::{Trace, TraceOp};
use std::collections::{HashMap, HashSet};
use std::fmt;
use vbs_runtime::FabricId;

/// Metrics of one trace replay.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Events replayed.
    pub events: usize,
    /// Scheduler counters at the end of the replay.
    pub sched: SchedMetrics,
    /// Decode-cache counters at the end of the replay.
    pub cache: CacheStats,
    /// Fragmentation of the final fabric state.
    pub final_fragmentation: f64,
    /// Unload events whose job was already gone (evicted or rejected).
    pub departures_already_gone: u64,
}

impl SimReport {
    /// Accepted / submitted loads.
    pub fn acceptance_rate(&self) -> f64 {
        self.sched.acceptance_rate()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events            {:>8}", self.events)?;
        writeln!(f, "loads submitted   {:>8}", self.sched.loads_submitted)?;
        writeln!(
            f,
            "accepted          {:>8}  ({:.1}%)",
            self.sched.loads_accepted,
            100.0 * self.acceptance_rate()
        )?;
        writeln!(f, "rejected          {:>8}", self.sched.loads_rejected)?;
        writeln!(f, "deadline missed   {:>8}", self.sched.deadline_missed)?;
        writeln!(f, "evictions         {:>8}", self.sched.evictions)?;
        writeln!(f, "relocations       {:>8}", self.sched.relocations)?;
        writeln!(
            f,
            "compaction        {:>8} frames moved  (mean pause {:.1} µs)",
            self.sched.compaction_frames_moved,
            self.sched.mean_compaction_micros()
        )?;
        writeln!(
            f,
            "decodes           {:>8}  (mean {:.1} µs)",
            self.sched.decodes,
            self.sched.mean_decode_micros()
        )?;
        writeln!(
            f,
            "cache             {:>8} hits / {} misses ({:.1}% hit rate)",
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate()
        )?;
        writeln!(
            f,
            "fragmentation     {:>8.3} mean / {:.3} final",
            self.sched.mean_fragmentation(),
            self.final_fragmentation
        )
    }
}

/// What the trace driver needs from a replay target — implemented by the
/// single-fabric [`Scheduler`] and the [`MultiFabricScheduler`], so both
/// replay a trace through the *same* event loop (the K=1 differential tests
/// rely on the loops being literally shared).
pub trait ReplayTarget {
    /// Advances the target's logical clock.
    fn advance_to(&mut self, tick: u64);
    /// Enqueues a request, returning its job/request id.
    fn submit(&mut self, request: Request) -> u64;
    /// Processes everything queued, returning the outcomes.
    fn process(&mut self) -> Vec<Outcome>;
}

impl ReplayTarget for Scheduler {
    fn advance_to(&mut self, tick: u64) {
        Scheduler::advance_to(self, tick);
    }
    fn submit(&mut self, request: Request) -> u64 {
        Scheduler::submit(self, request)
    }
    fn process(&mut self) -> Vec<Outcome> {
        self.process_pending()
    }
}

impl ReplayTarget for MultiFabricScheduler {
    fn advance_to(&mut self, tick: u64) {
        MultiFabricScheduler::advance_to(self, tick);
    }
    fn submit(&mut self, request: Request) -> u64 {
        MultiFabricScheduler::submit(self, request)
    }
    fn process(&mut self) -> Vec<Outcome> {
        self.process_pending()
    }
}

/// Replays `trace` through `scheduler` and reports the metrics of **this
/// replay only** — on a reused scheduler (e.g. to measure a warm decode
/// cache), counters accumulated by earlier activity are subtracted out.
///
/// Trace job ids are translated to scheduler job ids on the fly; an unload
/// of a job that was rejected or already evicted counts in
/// [`SimReport::departures_already_gone`] instead of failing.
pub fn replay(scheduler: &mut Scheduler, trace: &Trace) -> SimReport {
    let sched_before = scheduler.metrics();
    let cache_before = scheduler.cache_stats();
    let already_gone = drive(scheduler, trace);
    SimReport {
        events: trace.events.len(),
        sched: metrics_delta(scheduler.metrics(), &sched_before),
        cache: cache_delta(scheduler.cache_stats(), cache_before),
        final_fragmentation: scheduler.manager().fabric_view().fragmentation(),
        departures_already_gone: already_gone,
    }
}

/// Drives `target` through `trace` (the shared event loop of [`replay`] and
/// [`replay_multi`]) and returns the number of departures that found their
/// job already gone.
fn drive<T: ReplayTarget>(scheduler: &mut T, trace: &Trace) -> u64 {
    let mut job_map: HashMap<u64, u64> = HashMap::new();
    // (sched job, trace job) pairs of the current tick's arrivals.
    let mut load_of_round: Vec<(u64, u64)> = Vec::new();
    // Departures seen before their arrival was mapped (a zero-duration job
    // unloads in the same tick it loads, and departures sort first within a
    // tick): remembered and executed right after the arrival resolves.
    let mut deferred: HashSet<u64> = HashSet::new();
    let mut already_gone = 0u64;

    let mut index = 0;
    while index < trace.events.len() {
        let tick = trace.events[index].tick;
        scheduler.advance_to(tick);
        load_of_round.clear();
        while index < trace.events.len() && trace.events[index].tick == tick {
            match &trace.events[index].op {
                TraceOp::Load {
                    job,
                    task,
                    priority,
                    deadline,
                } => {
                    let sched_job = scheduler.submit(Request::Load {
                        task: task.clone(),
                        priority: *priority,
                        deadline: *deadline,
                    });
                    load_of_round.push((sched_job, *job));
                }
                TraceOp::Unload { job } => match job_map.remove(job) {
                    Some(sched_job) => {
                        scheduler.submit(Request::Unload { job: sched_job });
                    }
                    None => {
                        deferred.insert(*job);
                    }
                },
                TraceOp::Swap {
                    job,
                    task,
                    priority,
                    deadline,
                } => {
                    // Vacate the current variant first (its unload is
                    // processed before the replacement load in the same
                    // round), then request the new one under the same
                    // trace job id. A swap whose job is already gone
                    // (rejected or evicted) degenerates to a plain load —
                    // the scenario keeps pressing for the fabric.
                    if let Some(sched_job) = job_map.remove(job) {
                        scheduler.submit(Request::Unload { job: sched_job });
                    }
                    let sched_job = scheduler.submit(Request::Load {
                        task: task.clone(),
                        priority: *priority,
                        deadline: *deadline,
                    });
                    load_of_round.push((sched_job, *job));
                }
            }
            index += 1;
        }
        for outcome in scheduler.process() {
            match outcome {
                Outcome::Loaded { job, .. } => {
                    if let Some(&(_, trace_job)) =
                        load_of_round.iter().find(|(sched, _)| *sched == job)
                    {
                        job_map.insert(trace_job, job);
                    }
                    // Evicted victims keep their map entries; their later
                    // unload simply finds the job no longer resident.
                }
                Outcome::NotResident { .. } => already_gone += 1,
                _ => {}
            }
        }
        // Execute departures that arrived before their load resolved.
        let mut follow_up = false;
        for &(sched_job, trace_job) in &load_of_round {
            if deferred.remove(&trace_job) {
                if job_map.remove(&trace_job).is_some() {
                    scheduler.submit(Request::Unload { job: sched_job });
                    follow_up = true;
                } else {
                    // The load itself was rejected; its departure is moot.
                    already_gone += 1;
                }
            }
        }
        if follow_up {
            for outcome in scheduler.process() {
                if matches!(outcome, Outcome::NotResident { .. }) {
                    already_gone += 1;
                }
            }
        }
    }
    // Departures that never matched any arrival.
    already_gone += deferred.len() as u64;
    already_gone
}

/// Per-shard slice of a [`MultiSimReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// The fabric id its task manager was tagged with.
    pub id: FabricId,
    /// This shard's scheduler counters over the replay.
    pub sched: SchedMetrics,
    /// This shard's decode-cache counters over the replay.
    pub cache: CacheStats,
    /// Fragmentation of the shard's final fabric state.
    pub final_fragmentation: f64,
}

/// Metrics of one multi-fabric trace replay: fleet-level counters plus one
/// [`FabricReport`] per shard.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSimReport {
    /// Events replayed.
    pub events: usize,
    /// Fleet counters accumulated by the replay.
    pub multi: MultiMetrics,
    /// Per-shard counters, in fabric order.
    pub fabrics: Vec<FabricReport>,
    /// Unload events whose job was already gone (evicted or rejected).
    pub departures_already_gone: u64,
}

impl MultiSimReport {
    /// Fleet acceptance: loads accepted anywhere / loads submitted.
    pub fn acceptance_rate(&self) -> f64 {
        self.multi.acceptance_rate()
    }

    /// Sum of the per-shard scheduler counters (a migrated load counts on
    /// every fabric it visited — use [`MultiSimReport::acceptance_rate`]
    /// for deduplicated fleet acceptance).
    pub fn shard_totals(&self) -> SchedMetrics {
        let mut total = SchedMetrics::default();
        for fabric in &self.fabrics {
            let m = &fabric.sched;
            total.loads_submitted += m.loads_submitted;
            total.loads_accepted += m.loads_accepted;
            total.loads_rejected += m.loads_rejected;
            total.deadline_missed += m.deadline_missed;
            total.evictions += m.evictions;
            total.relocations += m.relocations;
            total.compaction_passes += m.compaction_passes;
            total.compaction_frames_moved += m.compaction_frames_moved;
            total.compaction_micros += m.compaction_micros;
            total.decode_micros += m.decode_micros;
            total.decodes += m.decodes;
            total.fragmentation_samples += m.fragmentation_samples;
            total.fragmentation_sum += m.fragmentation_sum;
            total.utilization_sum += m.utilization_sum;
            total.write_retries += m.write_retries;
            total.write_faults += m.write_faults;
            total.crc_mismatches += m.crc_mismatches;
            total.verify_scrubs += m.verify_scrubs;
            total.compaction_truncated += m.compaction_truncated;
            total.warm_hits += m.warm_hits;
            total.redecode_micros += m.redecode_micros;
            total.cache_demotions += m.cache_demotions;
            total.cache_promotions += m.cache_promotions;
            total.cache_resident_bytes += m.cache_resident_bytes;
        }
        total
    }
}

impl fmt::Display for MultiSimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events            {:>8}", self.events)?;
        writeln!(f, "loads submitted   {:>8}", self.multi.loads_submitted)?;
        writeln!(
            f,
            "accepted          {:>8}  ({:.1}%)",
            self.multi.loads_accepted,
            100.0 * self.acceptance_rate()
        )?;
        writeln!(f, "rejected          {:>8}", self.multi.loads_rejected)?;
        writeln!(
            f,
            "migrations        {:>8}  ({} accepted elsewhere)",
            self.multi.migrations, self.multi.migrated_accepts
        )?;
        writeln!(
            f,
            "pipeline          {:>8} staged decodes, {} µs writer stall",
            self.multi.staged_decodes, self.multi.pipeline_stall_micros
        )?;
        for (i, fabric) in self.fabrics.iter().enumerate() {
            writeln!(
                f,
                "{:<10} accept {:>4}/{:<4} evict {:>4} reloc {:>4} hit {:>5.1}% util {:>5.1}% frag {:.3}",
                format!("{} [{}]", fabric.id, i),
                fabric.sched.loads_accepted,
                fabric.sched.loads_submitted,
                fabric.sched.evictions,
                fabric.sched.relocations,
                100.0 * fabric.cache.hit_rate(),
                100.0 * fabric.sched.mean_utilization(),
                fabric.sched.mean_fragmentation(),
            )?;
        }
        Ok(())
    }
}

/// Replays `trace` through a multi-fabric fleet and reports fleet and
/// per-shard metrics of **this replay only** (counters accumulated by
/// earlier activity are subtracted out). The event loop is the one
/// [`replay`] uses, so a K=1 fleet replays a trace exactly like a plain
/// [`Scheduler`].
pub fn replay_multi(multi: &mut MultiFabricScheduler, trace: &Trace) -> MultiSimReport {
    let multi_before = *multi.metrics();
    let sched_before: Vec<SchedMetrics> = multi.fabric_metrics();
    let cache_before: Vec<CacheStats> = multi.fabrics().iter().map(|f| f.cache_stats()).collect();
    let already_gone = drive(multi, trace);
    let fabrics = multi
        .fabrics()
        .iter()
        .enumerate()
        .map(|(i, fabric)| FabricReport {
            id: fabric.manager().fabric_id(),
            sched: metrics_delta(fabric.metrics(), &sched_before[i]),
            cache: cache_delta(fabric.cache_stats(), cache_before[i]),
            final_fragmentation: fabric.manager().fabric_view().fragmentation(),
        })
        .collect();
    MultiSimReport {
        events: trace.events.len(),
        multi: multi_metrics_delta(multi.metrics(), &multi_before),
        fabrics,
        departures_already_gone: already_gone,
    }
}

/// Fleet counters accumulated between two dispatcher snapshots.
fn multi_metrics_delta(after: &MultiMetrics, before: &MultiMetrics) -> MultiMetrics {
    MultiMetrics {
        loads_submitted: after.loads_submitted - before.loads_submitted,
        loads_accepted: after.loads_accepted - before.loads_accepted,
        loads_rejected: after.loads_rejected - before.loads_rejected,
        migrations: after.migrations - before.migrations,
        migrated_accepts: after.migrated_accepts - before.migrated_accepts,
        staged_decodes: after.staged_decodes - before.staged_decodes,
        pipeline_stall_micros: after.pipeline_stall_micros - before.pipeline_stall_micros,
        process_rounds: after.process_rounds - before.process_rounds,
        quarantines: after.quarantines - before.quarantines,
        recoveries: after.recoveries - before.recoveries,
        residents_requeued: after.residents_requeued - before.residents_requeued,
        degraded_accepts: after.degraded_accepts - before.degraded_accepts,
    }
}

/// Counters accumulated between two scheduler snapshots.
fn metrics_delta(after: SchedMetrics, before: &SchedMetrics) -> SchedMetrics {
    SchedMetrics {
        loads_submitted: after.loads_submitted - before.loads_submitted,
        loads_accepted: after.loads_accepted - before.loads_accepted,
        loads_rejected: after.loads_rejected - before.loads_rejected,
        deadline_missed: after.deadline_missed - before.deadline_missed,
        evictions: after.evictions - before.evictions,
        relocations: after.relocations - before.relocations,
        compaction_passes: after.compaction_passes - before.compaction_passes,
        compaction_frames_moved: after.compaction_frames_moved - before.compaction_frames_moved,
        compaction_micros: after.compaction_micros - before.compaction_micros,
        decode_micros: after.decode_micros - before.decode_micros,
        decodes: after.decodes - before.decodes,
        fragmentation_samples: after.fragmentation_samples - before.fragmentation_samples,
        fragmentation_sum: after.fragmentation_sum - before.fragmentation_sum,
        utilization_sum: after.utilization_sum - before.utilization_sum,
        write_retries: after.write_retries - before.write_retries,
        write_faults: after.write_faults - before.write_faults,
        crc_mismatches: after.crc_mismatches - before.crc_mismatches,
        verify_scrubs: after.verify_scrubs - before.verify_scrubs,
        compaction_truncated: after.compaction_truncated - before.compaction_truncated,
        warm_hits: after.warm_hits - before.warm_hits,
        redecode_micros: after.redecode_micros - before.redecode_micros,
        cache_demotions: after.cache_demotions - before.cache_demotions,
        cache_promotions: after.cache_promotions - before.cache_promotions,
        // Point-in-time residency, not a counter: report the final value.
        cache_resident_bytes: after.cache_resident_bytes,
    }
}

/// Hit/miss counters accumulated between two cache snapshots; entry counts
/// are point-in-time values and reported as-is.
fn cache_delta(after: CacheStats, before: CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        warm_hits: after.warm_hits - before.warm_hits,
        demotions: after.demotions - before.demotions,
        promotions: after.promotions - before.promotions,
        warm_admissions: after.warm_admissions - before.warm_admissions,
        entries: after.entries,
        warm_entries: after.warm_entries,
        capacity: after.capacity,
        hot_bytes: after.hot_bytes,
        warm_bytes: after.warm_bytes,
    }
}
