//! The checked-in MCNC trace corpus: loader and deterministic golden
//! replay.
//!
//! `tests/traces/mcnc/` (workspace root) holds the output of running the
//! MCNC circuit set end-to-end through the CAD flow — BLIF text, encoded
//! `.vbs` streams, workload traces and a `manifest.txt` tying them
//! together. This module loads that corpus into a [`VbsRepository`] and
//! replays its traces through the single- and multi-fabric schedulers with
//! the exact configuration the golden counters were recorded under, so the
//! corpus test, the drift-checking CI binary and the benchmarks all share
//! one definition of "the MCNC replay".
//!
//! Manifest format (line-oriented, `#` comments):
//!
//! ```text
//! arch <channel_width> <lut_size>
//! single <width> <height>
//! fleet <k> <width> <height>
//! task <name> <file> <grid_width> <grid_height> <luts>
//! trace <name> <file>
//! ```
//!
//! All tasks share the one `arch` line — the config memory rejects foreign
//! layouts, so a corpus mixing architectures could never replay.

use crate::evict::LruEviction;
use crate::fault::{FaultInjector, FaultPlan};
use crate::multi::{MultiConfig, MultiFabricScheduler};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::shard::{shard_policy_by_name, SHARD_POLICY_NAMES};
use crate::sim::{replay, replay_multi};
use crate::trace::{Trace, TraceError, TraceEvent, TraceOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vbs_arch::{ArchSpec, Device};
use vbs_runtime::{FabricId, FirstFit, ReconfigurationController, TaskManager, VbsRepository};

/// Errors raised while loading a corpus directory.
#[derive(Debug)]
pub enum CorpusError {
    /// A file could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error message.
        message: String,
    },
    /// The manifest did not parse.
    Manifest {
        /// 1-based manifest line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A trace file did not parse.
    Trace {
        /// The trace name from the manifest.
        name: String,
        /// The underlying trace error.
        error: TraceError,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, message } => {
                write!(f, "corpus file {}: {message}", path.display())
            }
            CorpusError::Manifest { line, reason } => {
                write!(f, "corpus manifest line {line}: {reason}")
            }
            CorpusError::Trace { name, error } => {
                write!(f, "corpus trace `{name}`: {error}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// One task entry of the corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusTask {
    /// Repository name (`alu4`, or `alu4@s` for a variant).
    pub name: String,
    /// The `.vbs` file, relative to the corpus directory.
    pub file: String,
    /// Placed grid width in macro columns.
    pub width: u16,
    /// Placed grid height in macro rows.
    pub height: u16,
    /// LUT count of the circuit behind the stream.
    pub luts: usize,
}

/// The parsed corpus: architecture, fabric shapes, task streams and traces.
#[derive(Debug, Clone)]
pub struct McncCorpus {
    /// Channel width (`W`) every stream was encoded for.
    pub channel_width: u16,
    /// LUT size (`K`) every stream was encoded for.
    pub lut_size: u8,
    /// Single-fabric replay device shape.
    pub single: (u16, u16),
    /// Fleet replay shape: `(k, width, height)`.
    pub fleet: (usize, u16, u16),
    /// Task entries, in manifest order.
    pub tasks: Vec<CorpusTask>,
    /// The serialized streams, keyed by task name.
    pub repository: VbsRepository,
    /// `(name, trace)` pairs, in manifest order.
    pub traces: Vec<(String, Trace)>,
}

/// The manifest with file references still unresolved.
#[derive(Debug)]
struct Manifest {
    channel_width: u16,
    lut_size: u8,
    single: (u16, u16),
    fleet: (usize, u16, u16),
    tasks: Vec<CorpusTask>,
    traces: Vec<(String, String)>,
}

fn parse_manifest(text: &str) -> Result<Manifest, CorpusError> {
    let mut arch: Option<(u16, u8)> = None;
    let mut single: Option<(u16, u16)> = None;
    let mut fleet: Option<(usize, u16, u16)> = None;
    let mut tasks = Vec::new();
    let mut traces = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason: String| CorpusError::Manifest {
            line: idx + 1,
            reason,
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        let num = |field: &str, what: &str| -> Result<u64, CorpusError> {
            field
                .parse()
                .map_err(|_| err(format!("invalid {what} `{field}`")))
        };
        match fields.as_slice() {
            ["arch", w, k] => {
                arch = Some((num(w, "channel width")? as u16, num(k, "lut size")? as u8));
            }
            ["single", w, h] => {
                single = Some((num(w, "width")? as u16, num(h, "height")? as u16));
            }
            ["fleet", k, w, h] => {
                fleet = Some((
                    num(k, "fleet size")? as usize,
                    num(w, "width")? as u16,
                    num(h, "height")? as u16,
                ));
            }
            ["task", name, file, w, h, luts] => {
                tasks.push(CorpusTask {
                    name: (*name).to_string(),
                    file: (*file).to_string(),
                    width: num(w, "width")? as u16,
                    height: num(h, "height")? as u16,
                    luts: num(luts, "lut count")? as usize,
                });
            }
            ["trace", name, file] => {
                traces.push(((*name).to_string(), (*file).to_string()));
            }
            _ => return Err(err(format!("unrecognized manifest line `{line}`"))),
        }
    }
    let missing = |what: &str| CorpusError::Manifest {
        line: 0,
        reason: format!("missing `{what}` line"),
    };
    let (channel_width, lut_size) = arch.ok_or_else(|| missing("arch"))?;
    Ok(Manifest {
        channel_width,
        lut_size,
        single: single.ok_or_else(|| missing("single"))?,
        fleet: fleet.ok_or_else(|| missing("fleet"))?,
        tasks,
        traces,
    })
}

impl McncCorpus {
    /// Loads the corpus from `dir` (the directory holding `manifest.txt`).
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusError`] when a file is unreadable or the manifest
    /// or a trace does not parse.
    pub fn load(dir: impl AsRef<Path>) -> Result<McncCorpus, CorpusError> {
        let dir = dir.as_ref();
        let read = |path: PathBuf| -> Result<Vec<u8>, CorpusError> {
            std::fs::read(&path).map_err(|e| CorpusError::Io {
                path,
                message: e.to_string(),
            })
        };
        let manifest_text = read(dir.join("manifest.txt"))?;
        let manifest = parse_manifest(&String::from_utf8_lossy(&manifest_text))?;
        let mut repository = VbsRepository::new();
        for task in &manifest.tasks {
            repository.store_bytes(task.name.clone(), read(dir.join(&task.file))?);
        }
        let mut traces = Vec::with_capacity(manifest.traces.len());
        for (name, file) in &manifest.traces {
            let text = read(dir.join(file))?;
            let trace = Trace::from_text(&String::from_utf8_lossy(&text)).map_err(|error| {
                CorpusError::Trace {
                    name: name.clone(),
                    error,
                }
            })?;
            traces.push((name.clone(), trace));
        }
        Ok(McncCorpus {
            channel_width: manifest.channel_width,
            lut_size: manifest.lut_size,
            single: manifest.single,
            fleet: manifest.fleet,
            tasks: manifest.tasks,
            repository,
            traces,
        })
    }

    /// Looks up a trace by manifest name.
    pub fn trace(&self, name: &str) -> Option<&Trace> {
        self.traces.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// The replay scheduler configuration the golden counters are recorded
    /// under (mirrors the `tests/traces/*.golden` fleet configuration).
    pub fn replay_config() -> SchedulerConfig {
        SchedulerConfig {
            eviction_limit: 1,
            compaction: true,
            ..SchedulerConfig::default()
        }
    }

    fn device(&self, width: u16, height: u16) -> Device {
        let spec = ArchSpec::new(self.channel_width, self.lut_size).expect("corpus arch spec");
        Device::new(spec, width, height).expect("corpus device")
    }

    fn scheduler_on(&self, width: u16, height: u16, fabric: u32) -> Scheduler {
        self.scheduler_on_with(width, height, fabric, Self::replay_config())
    }

    fn scheduler_on_with(
        &self,
        width: u16,
        height: u16,
        fabric: u32,
        config: SchedulerConfig,
    ) -> Scheduler {
        let manager = TaskManager::new(
            ReconfigurationController::new(self.device(width, height)),
            self.repository.clone(),
        )
        .with_policy(Box::new(FirstFit))
        .with_fabric_id(FabricId(fabric));
        Scheduler::with_config(manager, Box::new(LruEviction), config)
    }

    /// The single-fabric replay scheduler over the corpus repository.
    pub fn single_scheduler(&self) -> Scheduler {
        self.scheduler_on(self.single.0, self.single.1, 0)
    }

    /// The single-fabric replay scheduler under an explicit configuration —
    /// the finite-cache-budget replays verify their goldens through this.
    pub fn single_scheduler_with(&self, config: SchedulerConfig) -> Scheduler {
        self.scheduler_on_with(self.single.0, self.single.1, 0, config)
    }

    /// A replay scheduler over the corpus repository on an arbitrary fabric
    /// shape — the memory-budget benchmarks replay the corpus traces on
    /// production-scale (100×100) devices through this.
    pub fn scheduler_sized(&self, width: u16, height: u16, config: SchedulerConfig) -> Scheduler {
        self.scheduler_on_with(width, height, 0, config)
    }

    /// A replay scheduler over an explicit repository (e.g. the scaled
    /// instance population of [`McncCorpus::scaled_repository`]) on an
    /// arbitrary fabric shape.
    pub fn scheduler_over(
        &self,
        repository: VbsRepository,
        width: u16,
        height: u16,
        config: SchedulerConfig,
    ) -> Scheduler {
        let manager = TaskManager::new(
            ReconfigurationController::new(self.device(width, height)),
            repository,
        )
        .with_policy(Box::new(FirstFit))
        .with_fabric_id(FabricId(0));
        Scheduler::with_config(manager, Box::new(LruEviction), config)
    }

    /// The corpus circuits without their `@` variants — the base library a
    /// scaled fleet population draws from.
    fn base_tasks(&self) -> Vec<&CorpusTask> {
        self.tasks
            .iter()
            .filter(|t| !t.name.contains('@'))
            .collect()
    }

    fn instance_name(base: &str, i: usize) -> String {
        format!("{base}#{i:02}")
    }

    /// A production-scale task population: `instances` instance names
    /// (`circuit#NN`, round-robin over the corpus base circuits), each
    /// backed by that circuit's checked-in stream bytes — a fleet serving
    /// many deployed tasks compiled from a small circuit library.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is 0.
    pub fn scaled_repository(&self, instances: usize) -> VbsRepository {
        assert!(instances > 0, "population needs at least one instance");
        let bases = self.base_tasks();
        let mut repository = VbsRepository::new();
        for i in 0..instances {
            let base = &bases[i % bases.len()];
            let bytes = self
                .repository
                .bytes(&base.name)
                .expect("base stream present")
                .to_vec();
            repository.store_bytes(Self::instance_name(&base.name, i), bytes);
        }
        repository
    }

    /// The steady-state trace over that population: `loads` arrivals where
    /// a 4-member dominant working set (the head) draws ~94% of the traffic
    /// and the remaining ~6% spreads uniformly over the cold tail — the
    /// steady-fleet texture, where a few tasks cycle constantly while the
    /// long tail of registered instances is touched only occasionally.
    /// Uniform inter-arrival and resident-duration draws like
    /// [`Trace::synthetic`]. Same `(instances, loads, seed)` →
    /// bit-identical trace.
    ///
    /// # Panics
    ///
    /// Panics if `instances` or `loads` is 0.
    pub fn scaled_steady_trace(&self, instances: usize, loads: usize, seed: u64) -> Trace {
        assert!(instances > 0, "population needs at least one instance");
        assert!(loads > 0, "workload needs at least one load");
        let bases = self.base_tasks();
        let names: Vec<String> = (0..instances)
            .map(|i| Self::instance_name(&bases[i % bases.len()].name, i))
            .collect();
        // Head ranks split 940k total weight, tail ranks split 60k: with
        // the default 48-instance population that is a ~172:1 per-rank
        // odds ratio between a head member and a tail member.
        let head = 4usize.min(instances);
        let tail = (instances - head).max(1) as u64;
        let weights: Vec<u64> = (0..instances)
            .map(|r| {
                if r < head {
                    940_000 / head as u64
                } else {
                    (60_000 / tail).max(1)
                }
            })
            .collect();
        let total: u64 = weights.iter().sum();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e_f1ee_7000);
        let mut events = Vec::with_capacity(loads * 2);
        let mut tick = 0u64;
        for job in 1..=loads as u64 {
            tick += rng.gen_range(1u64..=6);
            let mut pick = rng.gen_range(0..total);
            let mut rank = 0usize;
            while pick >= weights[rank] {
                pick -= weights[rank];
                rank += 1;
            }
            events.push(TraceEvent {
                tick,
                op: TraceOp::Load {
                    job,
                    task: names[rank].clone(),
                    priority: (job % 4) as u8,
                    deadline: Some(tick + 64),
                },
            });
            events.push(TraceEvent {
                tick: tick + rng.gen_range(1u64..=48),
                op: TraceOp::Unload { job },
            });
        }
        let mut trace = Trace { events };
        trace.normalize();
        trace
    }

    /// The fleet replay scheduler, dispatching through the shard policy
    /// named `policy` (`None` for unknown names).
    pub fn fleet_scheduler(&self, policy: &str) -> Option<MultiFabricScheduler> {
        self.fleet_scheduler_with(policy, Self::replay_config())
    }

    /// The fleet replay scheduler under an explicit per-fabric scheduler
    /// configuration.
    pub fn fleet_scheduler_with(
        &self,
        policy: &str,
        config: SchedulerConfig,
    ) -> Option<MultiFabricScheduler> {
        let shard = shard_policy_by_name(policy)?;
        let (k, width, height) = self.fleet;
        let fabrics = (0..k)
            .map(|i| self.scheduler_on_with(width, height, i as u32, config))
            .collect();
        Some(MultiFabricScheduler::new(
            fabrics,
            shard,
            MultiConfig::default(),
        ))
    }

    /// Deterministically replays every corpus trace through the single
    /// scheduler and the fleet under every shard policy, and renders one
    /// counter line per replay:
    ///
    /// ```text
    /// <trace> single <accepted> <rejected> <deadline_missed> <evictions> <relocations>
    /// <trace> fleet:<policy> <accepted> <rejected> <migrations> <evictions> <relocations> <per-fabric accepted...>
    /// ```
    ///
    /// These lines are the corpus goldens: the replay test and the CI drift
    /// check compare them verbatim against `replay.golden`.
    pub fn golden_lines(&self) -> Vec<String> {
        self.golden_lines_with(Self::replay_config())
    }

    /// [`Self::golden_lines`] under an explicit scheduler configuration.
    ///
    /// The golden counters pin only budget-invariant behavior (accepted,
    /// rejected, migrations, evictions, relocations, deadlines), so a
    /// finite-cache-budget replay must reproduce them line for line — as
    /// long as the warm tier is roomy enough to retain every task name,
    /// since [`crate::CacheAffinity`] routes on name retention. The
    /// finite-budget re-verification tests call this.
    pub fn golden_lines_with(&self, config: SchedulerConfig) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, trace) in &self.traces {
            let mut single = self.single_scheduler_with(config);
            let report = replay(&mut single, trace);
            lines.push(format!(
                "{name} single {} {} {} {} {}",
                report.sched.loads_accepted,
                report.sched.loads_rejected,
                report.sched.deadline_missed,
                report.sched.evictions,
                report.sched.relocations,
            ));
            for &policy in SHARD_POLICY_NAMES {
                let mut fleet = self
                    .fleet_scheduler_with(policy, config)
                    .expect("SHARD_POLICY_NAMES are resolvable");
                let report = replay_multi(&mut fleet, trace);
                let mut line = format!(
                    "{name} fleet:{policy} {} {} {} {} {}",
                    report.multi.loads_accepted,
                    report.multi.loads_rejected,
                    report.multi.migrations,
                    report
                        .fabrics
                        .iter()
                        .map(|f| f.sched.evictions)
                        .sum::<u64>(),
                    report
                        .fabrics
                        .iter()
                        .map(|f| f.sched.relocations)
                        .sum::<u64>(),
                );
                for fabric in &report.fabrics {
                    line.push_str(&format!(" {}", fabric.sched.loads_accepted));
                }
                lines.push(line);
            }
        }
        lines
    }

    /// The seeded fault schedules of the chaos replay, one plan per fleet
    /// fabric (see `crate::fault` for the format). Fabric 0 suffers
    /// scattered write faults plus a whole-fabric outage over the middle of
    /// the steady trace; fabric 1 stays reachable but flaky, so the
    /// survivors' self-healing (retry, scrub, re-placement) is exercised
    /// while it absorbs the evacuated residents.
    pub const CHAOS_PLANS: [&'static str; 2] = [
        "seed 42\nwrite 3 transient\nwrite 9 corrupt\nwrite 14 persistent\noutage 55 90\n",
        "seed 43\nwrite 5 transient\nwrite 11 corrupt\nwrite 20 transient\n",
    ];

    /// The fleet replay scheduler with the chaos fault schedules installed:
    /// readback verification on, one [`FaultInjector`] per fabric replaying
    /// [`Self::CHAOS_PLANS`].
    pub fn chaos_fleet_scheduler(&self) -> MultiFabricScheduler {
        self.chaos_fleet_scheduler_with(Self::replay_config())
    }

    /// [`Self::chaos_fleet_scheduler`] under an explicit per-fabric
    /// configuration — the finite-cache-budget chaos re-verification
    /// replays the chaos goldens through this.
    pub fn chaos_fleet_scheduler_with(&self, config: SchedulerConfig) -> MultiFabricScheduler {
        let mut fleet = self
            .fleet_scheduler_with("round-robin", config)
            .expect("round-robin resolves");
        for (i, plan) in Self::CHAOS_PLANS
            .iter()
            .enumerate()
            .take(fleet.fabric_count())
        {
            let plan = FaultPlan::parse(plan).expect("chaos plans parse");
            let fabric = fleet.fabric_mut(i);
            fabric.set_verify(true);
            fabric.set_fault_hook(Some(Arc::new(FaultInjector::new(plan))));
        }
        fleet
    }

    /// Replays the steady trace through the fleet under the chaos fault
    /// schedules and renders deterministic counter lines — the chaos
    /// goldens. Two runs of this function must produce identical lines;
    /// the chaos test and the `chaos` CI binary both pin that.
    ///
    /// ```text
    /// chaos steady fleet <accepted> <rejected> <migrations> <quarantines> <recoveries> <requeued> <degraded>
    /// chaos steady fabric<i> <accepted> <rejected> <write_faults> <write_retries> <crc_mismatches> <verify_scrubs>
    /// ```
    pub fn chaos_lines(&self) -> Vec<String> {
        self.chaos_lines_with(Self::replay_config())
    }

    /// [`Self::chaos_lines`] under an explicit per-fabric configuration —
    /// the finite-cache-budget chaos re-verification replays the chaos
    /// goldens through this. Every pinned chaos counter (faults, retries,
    /// CRC mismatches, scrubs included) is budget-invariant: a warm re-
    /// decode still fetches and writes through the same faultable path.
    pub fn chaos_lines_with(&self, config: SchedulerConfig) -> Vec<String> {
        let mut fleet = self.chaos_fleet_scheduler_with(config);
        let trace = self.trace("steady").expect("steady trace present");
        let report = replay_multi(&mut fleet, trace);
        let mut lines = vec![format!(
            "chaos steady fleet {} {} {} {} {} {} {}",
            report.multi.loads_accepted,
            report.multi.loads_rejected,
            report.multi.migrations,
            report.multi.quarantines,
            report.multi.recoveries,
            report.multi.residents_requeued,
            report.multi.degraded_accepts,
        )];
        for (i, fabric) in report.fabrics.iter().enumerate() {
            lines.push(format!(
                "chaos steady fabric{i} {} {} {} {} {} {}",
                fabric.sched.loads_accepted,
                fabric.sched.loads_rejected,
                fabric.sched.write_faults,
                fabric.sched.write_retries,
                fabric.sched.crc_mismatches,
                fabric.sched.verify_scrubs,
            ));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "\
# vbs mcnc corpus v1
arch 10 6
single 14 14
fleet 2 12 12

task alu4 alu4.vbs 7 7 61
task tseng tseng.vbs 6 6 44
trace steady steady.trace
";

    #[test]
    fn manifest_parses() {
        let m = parse_manifest(MANIFEST).expect("manifest");
        assert_eq!((m.channel_width, m.lut_size), (10, 6));
        assert_eq!(m.single, (14, 14));
        assert_eq!(m.fleet, (2, 12, 12));
        assert_eq!(m.tasks.len(), 2);
        assert_eq!(m.tasks[0].name, "alu4");
        assert_eq!(m.tasks[0].luts, 61);
        assert_eq!(
            m.traces,
            vec![("steady".to_string(), "steady.trace".to_string())]
        );
    }

    #[test]
    fn manifest_rejects_garbage_with_line_numbers() {
        let err = parse_manifest("arch 10 6\nbogus line here\n").unwrap_err();
        assert!(
            matches!(err, CorpusError::Manifest { line: 2, .. }),
            "{err:?}"
        );
        let err = parse_manifest("arch ten 6\n").unwrap_err();
        assert!(err.to_string().contains("channel width"), "{err}");
        let err = parse_manifest("single 14 14\n").unwrap_err();
        assert!(err.to_string().contains("arch"), "{err}");
    }
}
