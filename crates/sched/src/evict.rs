//! Eviction policies: which resident task leaves when the fabric is full.
//!
//! Because a Virtual Bit-Stream can be re-loaded anywhere later, evicting a
//! task is cheap in this architecture — its stream stays in the external
//! memory and (with the decode cache warm) reinstating it costs one memory
//! write pass. That makes preemptive multi-tenant policies practical.

use std::fmt;
use vbs_arch::Rect;

/// What the eviction policy knows about one resident task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidentInfo {
    /// Scheduler job id of the resident.
    pub job: u64,
    /// Task name in the repository.
    pub name: String,
    /// Fabric region the task occupies.
    pub region: Rect,
    /// Request priority the task was loaded with (higher = more important).
    pub priority: u8,
    /// Tick the task was loaded at.
    pub loaded_at: u64,
    /// Tick of the last load/touch of this task.
    pub last_used: u64,
}

/// A strategy ordering eviction victims when a load finds no free region.
pub trait EvictionPolicy: fmt::Debug + Send + Sync {
    /// Short policy name for logs and reports.
    fn name(&self) -> &'static str;

    /// Returns job ids in eviction order (most evictable first). Jobs not
    /// listed are protected from eviction for this request.
    fn victims(&self, residents: &[ResidentInfo], incoming_priority: u8) -> Vec<u64>;
}

/// Evict the least recently used resident first, regardless of priority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruEviction;

impl EvictionPolicy for LruEviction {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victims(&self, residents: &[ResidentInfo], _incoming_priority: u8) -> Vec<u64> {
        let mut order: Vec<&ResidentInfo> = residents.iter().collect();
        order.sort_by_key(|r| (r.last_used, r.loaded_at, r.job));
        order.into_iter().map(|r| r.job).collect()
    }
}

/// Evict the lowest-priority resident first, and never evict a resident
/// whose priority is at least the incoming request's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityEviction;

impl EvictionPolicy for PriorityEviction {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn victims(&self, residents: &[ResidentInfo], incoming_priority: u8) -> Vec<u64> {
        let mut order: Vec<&ResidentInfo> = residents
            .iter()
            .filter(|r| r.priority < incoming_priority)
            .collect();
        order.sort_by_key(|r| (r.priority, r.last_used, r.job));
        order.into_iter().map(|r| r.job).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{Coord, Rect};

    fn resident(job: u64, priority: u8, last_used: u64) -> ResidentInfo {
        ResidentInfo {
            job,
            name: format!("t{job}"),
            region: Rect::new(Coord::new(0, 0), 1, 1),
            priority,
            loaded_at: 0,
            last_used,
        }
    }

    #[test]
    fn lru_orders_by_recency() {
        let residents = vec![resident(1, 9, 30), resident(2, 0, 10), resident(3, 5, 20)];
        assert_eq!(LruEviction.victims(&residents, 0), vec![2, 3, 1]);
    }

    #[test]
    fn priority_protects_equal_or_higher() {
        let residents = vec![resident(1, 3, 30), resident(2, 7, 10), resident(3, 3, 20)];
        assert_eq!(PriorityEviction.victims(&residents, 5), vec![3, 1]);
        assert_eq!(PriorityEviction.victims(&residents, 8), vec![3, 1, 2]);
        assert!(PriorityEviction.victims(&residents, 3).is_empty());
    }
}
