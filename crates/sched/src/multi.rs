//! Multi-fabric scheduling: one request stream sharded over K devices.
//!
//! [`MultiFabricScheduler`] turns a fleet of single-fabric [`Scheduler`]s
//! into one dispatcher. Each submitted load is routed to a fabric by a
//! pluggable [`ShardPolicy`] (round-robin, least-loaded, cache-affinity) and
//! joins that fabric's work queue; unloads and relocations follow the job to
//! wherever it was routed. Two mechanisms keep the fleet busy:
//!
//! * **Overlapped decode pipeline** — before a processing round, the
//!   de-virtualizations the round will need are fanned out to a worker pool
//!   on [`std::thread::scope`]; workers hand finished streams to per-fabric
//!   writer threads through channels ([`Scheduler::stage_decoded`]), so one
//!   fabric's configuration-memory writes overlap another's decodes (and
//!   the pool's decode of the next stream overlaps this fabric's writes).
//!   Counter accounting of a staged decode is identical to an on-demand
//!   one, which is what keeps a K=1 fleet bit-identical to a plain
//!   [`Scheduler`] — the differential tests pin this down.
//! * **Cross-fabric migration** — a load rejected for capacity on its
//!   assigned fabric is re-dispatched to a fabric it has not tried yet
//!   (chosen by the same shard policy), so one saturated device sheds work
//!   to the rest of the fleet instead of dropping it.
//!
//! Job ids returned by [`MultiFabricScheduler::submit`] are fleet-global;
//! outcomes are translated back to them, so callers never see per-fabric
//! ids.

use crate::pool::BitstreamPool;
use crate::scheduler::{EvacuatedJob, Outcome, RejectReason, Request, SchedMetrics, Scheduler};
use crate::shard::{FabricStatus, ShardPolicy};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use vbs_bitstream::TaskBitstream;
use vbs_core::Vbs;
use vbs_runtime::devirtualize_into;
use vbs_telemetry::{EventKind, Telemetry, FLEET_FABRIC};

/// Tunables of the multi-fabric dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiConfig {
    /// Worker threads of the decode pipeline (at least 1).
    pub decode_workers: usize,
    /// Whether capacity-rejected loads migrate to an untried fabric.
    pub migration: bool,
    /// Whether fabrics use the streaming decode→write load path instead of
    /// the staged pipeline: the round's decodes are *not* fanned out to the
    /// worker pool; each fabric writer decodes on demand and overlaps
    /// configuration-memory writes with the decode of a single load
    /// ([`crate::SchedulerConfig::streaming`] is switched on for every
    /// fabric). Counters stay bit-identical to the staged/buffered modes.
    pub streaming: bool,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            decode_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            migration: true,
            streaming: false,
        }
    }
}

/// Fleet-level counters (per-fabric counters live in each shard's
/// [`SchedMetrics`]). A migrated load counts once here — submitted once,
/// accepted or rejected once — while every fabric it visited counts it in
/// its own per-shard view.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MultiMetrics {
    /// Load requests submitted to the fleet.
    pub loads_submitted: u64,
    /// Loads accepted by some fabric.
    pub loads_accepted: u64,
    /// Loads rejected by every fabric they were dispatched to.
    pub loads_rejected: u64,
    /// Re-dispatches of a capacity-rejected load to another fabric.
    pub migrations: u64,
    /// Loads accepted on a fabric other than their first choice.
    pub migrated_accepts: u64,
    /// Streams de-virtualized by the pipeline's worker pool.
    pub staged_decodes: u64,
    /// Time fabric writers spent blocked waiting on the decode pool, µs
    /// (saturating).
    pub pipeline_stall_micros: u64,
    /// Processing rounds executed (≥1 per `process_pending` call).
    pub process_rounds: u64,
    /// Fabrics quarantined after going offline.
    pub quarantines: u64,
    /// Quarantined fabrics that recovered and rejoined the fleet.
    pub recoveries: u64,
    /// Residents of quarantined fabrics re-queued for re-placement on the
    /// survivors.
    pub residents_requeued: u64,
    /// Re-queued residents that landed on a surviving fabric (degraded-mode
    /// acceptance; the original load already counted in `loads_accepted`).
    pub degraded_accepts: u64,
}

impl MultiMetrics {
    /// Accepted / submitted loads, 1.0 when nothing was submitted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.loads_submitted == 0 {
            return 1.0;
        }
        self.loads_accepted as f64 / self.loads_submitted as f64
    }
}

/// A load waiting for its final outcome (used to drive migration).
#[derive(Debug)]
struct PendingLoad {
    request: Request,
    task: String,
    /// `(fabric, local job)` dispatches, in order. The fabric list doubles
    /// as the set a migrating load must not retry; the local ids let a
    /// final rejection prune every id mapping the load created.
    dispatched: Vec<(usize, u64)>,
    /// Whether this is a re-placement of a resident evacuated from a
    /// quarantined fabric (books as a degraded-mode acceptance, not a
    /// fresh fleet load).
    replacement: bool,
}

impl PendingLoad {
    fn tried(&self, fabric: usize) -> bool {
        self.dispatched.iter().any(|&(f, _)| f == fabric)
    }
}

/// One request stream sharded across K fabrics (see the module docs).
#[derive(Debug)]
pub struct MultiFabricScheduler {
    fabrics: Vec<Scheduler>,
    policy: Box<dyn ShardPolicy>,
    config: MultiConfig,
    /// `(fabric, local job)` → fleet-global id for load jobs. Entries live
    /// as long as a shard can still name the job in an outcome: pruned when
    /// the job is unloaded, reported gone, or finally rejected. An
    /// *evicted* job keeps its entry until its owner unloads it (eviction
    /// is not terminal for the owner — the unload must still resolve on the
    /// right fabric, and the K=1 differential requires the shard to process
    /// it), so clients should unload jobs they saw evicted.
    local_to_global: HashMap<(usize, u64), u64>,
    /// `(fabric, local request id)` → fleet-global id for in-flight unload
    /// and relocate requests; each entry is consumed by its own outcome.
    request_tags: HashMap<(usize, u64), u64>,
    /// Global load job → its current `(fabric, local job)` home.
    route: HashMap<u64, (usize, u64)>,
    pending_loads: HashMap<u64, PendingLoad>,
    /// Per-fabric quarantine flags: a fabric found offline after a round is
    /// quarantined (no new routing, residents re-queued elsewhere) until its
    /// fault hook reports it reachable again.
    quarantined: Vec<bool>,
    /// Outcomes answered without touching any fabric (unroutable targets).
    synthesized: Vec<(u64, Outcome)>,
    next_job: u64,
    metrics: MultiMetrics,
    /// Fleet-scope telemetry (dispatcher decisions, migrations). Installed
    /// by [`Self::set_telemetry`]; a no-op registry until then.
    telemetry: Telemetry,
    /// The fleet-wide recycled decode-state pool shared by every fabric's
    /// decode cache, every controller's decode lanes and the pipeline
    /// workers (which park their scratch arenas here between rounds).
    pool: BitstreamPool,
}

impl MultiFabricScheduler {
    /// Creates a dispatcher over a fleet of per-fabric schedulers.
    ///
    /// Every fabric should target the same architecture spec (any fabric
    /// must be able to host any task); sizes may differ.
    ///
    /// # Panics
    ///
    /// Panics if `fabrics` is empty.
    pub fn new(
        mut fabrics: Vec<Scheduler>,
        policy: Box<dyn ShardPolicy>,
        config: MultiConfig,
    ) -> Self {
        assert!(!fabrics.is_empty(), "a fleet needs at least one fabric");
        // One buffer pool for the whole fleet: an image evicted from any
        // fabric's decode cache feeds the next decode anywhere.
        let pool = BitstreamPool::default();
        for fabric in &mut fabrics {
            fabric.set_pool(pool.clone());
            if config.streaming {
                fabric.set_streaming(true);
            }
        }
        let quarantined = vec![false; fabrics.len()];
        MultiFabricScheduler {
            fabrics,
            policy,
            config,
            local_to_global: HashMap::new(),
            request_tags: HashMap::new(),
            route: HashMap::new(),
            pending_loads: HashMap::new(),
            quarantined,
            synthesized: Vec::new(),
            next_job: 1,
            metrics: MultiMetrics::default(),
            telemetry: Telemetry::disabled(),
            pool,
        }
    }

    /// Installs one shared telemetry registry across the whole fleet: the
    /// dispatcher records fleet-scope events (shard decisions, migrations)
    /// under the [`FLEET_FABRIC`] tag, each per-fabric scheduler and its
    /// decode lanes record under the fabric's index, and the shared buffer
    /// pool reports its checkout hits/misses to the same timeline.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (i, fabric) in self.fabrics.iter_mut().enumerate() {
            fabric.set_telemetry(telemetry.clone(), i as u16);
        }
        self.pool.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The dispatcher's telemetry handle (a shared clone).
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// The fleet-wide recycled-buffer pool (a shared handle).
    pub fn bitstream_pool(&self) -> BitstreamPool {
        self.pool.clone()
    }

    /// Number of fabrics in the fleet.
    pub fn fabric_count(&self) -> usize {
        self.fabrics.len()
    }

    /// Read access to one shard's scheduler.
    pub fn fabric(&self, index: usize) -> &Scheduler {
        &self.fabrics[index]
    }

    /// Mutable access to one shard's scheduler — the seam chaos drivers use
    /// to install per-fabric fault hooks and verification.
    pub fn fabric_mut(&mut self, index: usize) -> &mut Scheduler {
        &mut self.fabrics[index]
    }

    /// Whether a fabric is currently quarantined (offline and routed
    /// around).
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined[index]
    }

    /// Read access to every shard.
    pub fn fabrics(&self) -> &[Scheduler] {
        &self.fabrics
    }

    /// The active shard policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Fleet-level counters so far.
    pub const fn metrics(&self) -> &MultiMetrics {
        &self.metrics
    }

    /// Per-shard scheduler counters, indexed like [`Self::fabric`].
    pub fn fabric_metrics(&self) -> Vec<SchedMetrics> {
        self.fabrics.iter().map(|f| f.metrics()).collect()
    }

    /// Advances the logical clock of every fabric.
    pub fn advance_to(&mut self, tick: u64) {
        for fabric in &mut self.fabrics {
            fabric.advance_to(tick);
        }
    }

    /// Everything resident across the fleet as `(fabric index, global job,
    /// shard-local resident info)` triples.
    pub fn residents(&self) -> Vec<(usize, u64, crate::ResidentInfo)> {
        let mut out = Vec::new();
        for (f, fabric) in self.fabrics.iter().enumerate() {
            for info in fabric.residents() {
                let global = self
                    .local_to_global
                    .get(&(f, info.job))
                    .copied()
                    .expect("every shard job was routed by this dispatcher");
                out.push((f, global, info));
            }
        }
        out
    }

    fn statuses(&self, task: &str) -> Vec<FabricStatus> {
        let status_of = |(i, s): (usize, &Scheduler)| {
            let view = s.manager().fabric_view();
            FabricStatus {
                fabric: i,
                id: view.id(),
                free_area: view.free_area(),
                total_area: view.total_area(),
                queued_loads: s.queued_loads(),
                residents: s.manager().loaded_tasks().len(),
                holds_decoded: s.holds_decoded(task),
            }
        };
        // Quarantined fabrics take no new work. If the whole fleet is down
        // the unfiltered list keeps the policy fed (the load then fails on
        // the offline fabric and is reported, not silently dropped here).
        let healthy: Vec<FabricStatus> = self
            .fabrics
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.quarantined[i])
            .map(status_of)
            .collect();
        if !healthy.is_empty() {
            return healthy;
        }
        self.fabrics.iter().enumerate().map(status_of).collect()
    }

    /// Enqueues a request, routing loads through the shard policy, and
    /// returns its fleet-global id (semantics as [`Scheduler::submit`]).
    pub fn submit(&mut self, request: Request) -> u64 {
        let global = self.next_job;
        self.next_job += 1;
        match &request {
            Request::Load { task, .. } => {
                self.metrics.loads_submitted += 1;
                let statuses = self.statuses(task);
                let pick = self.policy.choose(task, &statuses);
                let fabric = statuses[pick].fabric;
                self.telemetry.event(
                    EventKind::ShardDecision,
                    FLEET_FABRIC,
                    0,
                    global,
                    fabric as u64,
                );
                let local = self.fabrics[fabric].submit(request.clone());
                self.local_to_global.insert((fabric, local), global);
                self.route.insert(global, (fabric, local));
                self.pending_loads.insert(
                    global,
                    PendingLoad {
                        task: task.clone(),
                        request,
                        dispatched: vec![(fabric, local)],
                        replacement: false,
                    },
                );
            }
            Request::Unload { job } => match self.route.get(job).copied() {
                Some((fabric, local)) => {
                    let local_req = self.fabrics[fabric].submit(Request::Unload { job: local });
                    self.request_tags.insert((fabric, local_req), global);
                }
                None => {
                    self.synthesized
                        .push((global, Outcome::NotResident { job: *job }));
                }
            },
            Request::Relocate { job, to } => match self.route.get(job).copied() {
                Some((fabric, local)) => {
                    let local_req = self.fabrics[fabric].submit(Request::Relocate {
                        job: local,
                        to: *to,
                    });
                    self.request_tags.insert((fabric, local_req), global);
                }
                None => {
                    self.synthesized
                        .push((global, Outcome::NotResident { job: *job }));
                }
            },
        }
        global
    }

    /// Processes every queued request, migrating capacity-rejected loads
    /// until each has either landed or tried every fabric, and returns the
    /// outcomes (fleet-global ids).
    pub fn process_pending(&mut self) -> Vec<Outcome> {
        self.process_pending_tagged()
            .into_iter()
            .map(|(_, outcome)| outcome)
            .collect()
    }

    /// As [`Self::process_pending`], but each outcome is tagged with the id
    /// [`Self::submit`] returned for the request that produced it.
    pub fn process_pending_tagged(&mut self) -> Vec<(u64, Outcome)> {
        let mut results: Vec<(u64, Outcome)> = std::mem::take(&mut self.synthesized);
        loop {
            self.metrics.process_rounds += 1;
            let round = self.process_round();
            // Translate the whole round before settling anything: settling
            // prunes id mappings, and a later outcome of the same round may
            // still name the pruned job (e.g. an unload and a relocate of
            // one job in the same batch).
            let translated: Vec<(u64, Outcome)> = round
                .into_iter()
                .map(|(fabric, local_req, outcome)| {
                    // A request is tagged either by its own unload/relocate
                    // tag (consumed here) or, for loads, by the job id.
                    let global = self
                        .request_tags
                        .remove(&(fabric, local_req))
                        .or_else(|| self.local_to_global.get(&(fabric, local_req)).copied())
                        .expect("every shard request was routed by this dispatcher");
                    (global, self.translate_outcome(fabric, outcome))
                })
                .collect();
            // Probe fabric health before settling: a fabric that went
            // offline during the round is quarantined *now*, so this very
            // round's runtime rejections from it migrate to survivors
            // instead of dropping, and its evacuated residents re-queue.
            let mut more_work = self.check_fabric_health();
            for (global, outcome) in translated {
                if self.try_migrate(global, &outcome) {
                    more_work = true;
                    continue; // final outcome pending on another fabric
                }
                self.settle(global, &outcome);
                results.push((global, outcome));
            }
            if !more_work {
                break;
            }
        }
        results
    }

    /// Probes every fabric's reachability after a round. A newly offline
    /// fabric is quarantined: its residents are evacuated (bookkeeping
    /// only — the device is unreachable) and re-queued on the survivors
    /// under their original fleet-global ids. A quarantined fabric whose
    /// hook reports it reachable again is wiped ([`Scheduler`]
    /// `reset_after_recovery`) and rejoins the routing set. Returns whether
    /// any resident was re-queued (another round must run to place it).
    fn check_fabric_health(&mut self) -> bool {
        let mut requeued = false;
        for i in 0..self.fabrics.len() {
            let offline = self.fabrics[i].is_offline();
            if offline && !self.quarantined[i] {
                self.quarantined[i] = true;
                self.metrics.quarantines += 1;
                let evacuated = self.fabrics[i].evacuate();
                self.telemetry.event(
                    EventKind::Quarantine,
                    FLEET_FABRIC,
                    0,
                    i as u64,
                    evacuated.len() as u64,
                );
                for job in evacuated {
                    requeued |= self.requeue_resident(i, job);
                }
            } else if !offline && self.quarantined[i] {
                // Nothing written during the outage can be trusted, so the
                // shard rejoins empty; if the wipe itself fails the fabric
                // stays quarantined and is re-probed next round.
                if self.fabrics[i].reset_after_recovery().is_ok() {
                    self.quarantined[i] = false;
                    self.metrics.recoveries += 1;
                    self.telemetry
                        .event(EventKind::Recover, FLEET_FABRIC, 0, i as u64, 0);
                }
            }
        }
        requeued
    }

    /// Re-queues one evacuated resident of quarantined fabric `from` as a
    /// replacement load on a surviving fabric, re-using its fleet-global
    /// id. Returns whether a new dispatch was created.
    fn requeue_resident(&mut self, from: usize, job: EvacuatedJob) -> bool {
        let Some(global) = self.local_to_global.remove(&(from, job.job)) else {
            // Not routed by this dispatcher (shard driven directly).
            return false;
        };
        self.route.remove(&global);
        self.metrics.residents_requeued += 1;
        let statuses = self.statuses(&job.task);
        if statuses.iter().all(|s| self.quarantined[s.fabric]) {
            // Whole fleet down: the resident is lost until re-submitted.
            return false;
        }
        let request = Request::Load {
            task: job.task.clone(),
            priority: job.priority,
            deadline: None,
        };
        let pick = self.policy.choose(&job.task, &statuses);
        let target = statuses[pick].fabric;
        self.telemetry.event(
            EventKind::ShardDecision,
            FLEET_FABRIC,
            0,
            global,
            target as u64,
        );
        let local = self.fabrics[target].submit(request.clone());
        self.local_to_global.insert((target, local), global);
        self.route.insert(global, (target, local));
        self.pending_loads.insert(
            global,
            PendingLoad {
                task: job.task,
                request,
                dispatched: vec![(target, local)],
                replacement: true,
            },
        );
        true
    }

    /// Books the final outcome of a request in the fleet counters and
    /// prunes the id maps of jobs no shard can name again.
    fn settle(&mut self, global: u64, outcome: &Outcome) {
        if let Some(pending) = self.pending_loads.remove(&global) {
            match outcome {
                Outcome::Loaded { .. } => {
                    if pending.replacement {
                        self.metrics.degraded_accepts += 1;
                    } else {
                        self.metrics.loads_accepted += 1;
                        if pending.dispatched.len() > 1 {
                            self.metrics.migrated_accepts += 1;
                        }
                    }
                    // Mappings of the fabrics that rejected the load are no
                    // longer reachable; only the accepting one stays.
                    if let Some(&home) = self.route.get(&global) {
                        for dispatch in pending.dispatched {
                            if dispatch != home {
                                self.local_to_global.remove(&dispatch);
                            }
                        }
                    }
                }
                Outcome::Rejected { .. } => {
                    // A failed *re-placement* is not a fresh fleet
                    // rejection — the original load already counted as
                    // accepted; the gap between `residents_requeued` and
                    // `degraded_accepts` is where lost residents show.
                    if !pending.replacement {
                        self.metrics.loads_rejected += 1;
                    }
                    self.route.remove(&global);
                    for dispatch in pending.dispatched {
                        self.local_to_global.remove(&dispatch);
                    }
                }
                _ => {}
            }
        }
        // An unloaded or reported-gone job can never appear in a shard
        // outcome again: drop its route and id mapping — unless the job's
        // *load* is still pending in this very batch (an unload submitted
        // before its target was processed resolves NotResident first, while
        // the load still lands afterwards and must stay addressable).
        if let Outcome::Unloaded { job } | Outcome::NotResident { job } = outcome {
            if !self.pending_loads.contains_key(job) {
                if let Some(home) = self.route.remove(job) {
                    self.local_to_global.remove(&home);
                }
            }
        }
    }

    /// Re-dispatches a capacity-rejected load to an untried fabric. Returns
    /// whether the load migrated (its outcome is then deferred).
    fn try_migrate(&mut self, global: u64, outcome: &Outcome) -> bool {
        if !self.config.migration {
            return false;
        }
        let Some(pending) = self.pending_loads.get(&global) else {
            return false;
        };
        let migratable = match outcome {
            Outcome::Rejected {
                reason: RejectReason::NoCapacity,
                ..
            } => true,
            // A load caught in flight by an outage fails with a runtime
            // error on the dead fabric; once that fabric is quarantined
            // the load deserves a surviving fabric, not a drop.
            Outcome::Rejected {
                reason: RejectReason::Runtime(_),
                ..
            } => pending
                .dispatched
                .last()
                .is_some_and(|&(f, _)| self.quarantined[f]),
            _ => false,
        };
        if !migratable {
            return false;
        }
        let task = pending.task.clone();
        let request = pending.request.clone();
        let untried: Vec<FabricStatus> = {
            let pending = &self.pending_loads[&global];
            self.statuses(&task)
                .into_iter()
                .filter(|s| !pending.tried(s.fabric))
                .collect()
        };
        if untried.is_empty() {
            return false;
        }
        let pick = self.policy.choose(&task, &untried);
        let target = untried[pick].fabric;
        self.telemetry
            .event(EventKind::Migrate, FLEET_FABRIC, 0, global, target as u64);
        let local = self.fabrics[target].submit(request);
        self.local_to_global.insert((target, local), global);
        self.route.insert(global, (target, local));
        self.pending_loads
            .get_mut(&global)
            .expect("checked above")
            .dispatched
            .push((target, local));
        self.metrics.migrations += 1;
        true
    }

    /// Maps every shard-local id inside an outcome back to its fleet-global
    /// id.
    fn translate_outcome(&self, fabric: usize, outcome: Outcome) -> Outcome {
        let map = |id: u64| -> u64 {
            self.local_to_global
                .get(&(fabric, id))
                .copied()
                .expect("every shard job was routed by this dispatcher")
        };
        match outcome {
            Outcome::Loaded {
                job,
                handle,
                origin,
                evicted,
                cache_hit,
            } => Outcome::Loaded {
                job: map(job),
                handle,
                origin,
                evicted: evicted.into_iter().map(map).collect(),
                cache_hit,
            },
            Outcome::Rejected {
                job,
                reason,
                evicted,
            } => Outcome::Rejected {
                job: map(job),
                reason,
                evicted: evicted.into_iter().map(map).collect(),
            },
            Outcome::Unloaded { job } => Outcome::Unloaded { job: map(job) },
            Outcome::NotResident { job } => Outcome::NotResident { job: map(job) },
            Outcome::Relocated { job, origin } => Outcome::Relocated {
                job: map(job),
                origin,
            },
        }
    }

    /// One pipelined processing round: fan the round's de-virtualizations
    /// out to the decode pool, hand streams to per-fabric writers through
    /// channels, and run every busy fabric's queue on its own writer
    /// thread. Returns `(fabric, local request id, outcome)` triples in
    /// fabric order.
    fn process_round(&mut self) -> Vec<(usize, u64, Outcome)> {
        type StagedMsg = (String, Option<(Arc<TaskBitstream>, u64)>);
        // One fabric writer's round result: (fabric, tagged outcomes, µs
        // spent stalled on the decode pool).
        type WriterResult = (usize, Vec<(u64, Outcome)>, u64);

        let fabric_count = self.fabrics.len();
        // Streaming mode decodes on demand inside each fabric writer
        // (overlapping writes within a load), so nothing is staged ahead.
        let jobs: VecDeque<(usize, String, Vbs)> = if self.config.streaming {
            VecDeque::new()
        } else {
            self.fabrics
                .iter()
                .enumerate()
                .flat_map(|(i, s)| {
                    s.pending_decode_fetches()
                        .into_iter()
                        .map(move |(name, vbs)| (i, name, vbs))
                })
                .collect()
        };
        let mut expected = vec![0usize; fabric_count];
        for &(fabric, _, _) in &jobs {
            expected[fabric] += 1;
        }
        self.metrics.staged_decodes += jobs.len() as u64;
        let workers = self.config.decode_workers.max(1).min(jobs.len());

        let mut senders: Vec<mpsc::Sender<StagedMsg>> = Vec::with_capacity(fabric_count);
        let mut receivers: Vec<Option<mpsc::Receiver<StagedMsg>>> =
            Vec::with_capacity(fabric_count);
        for _ in 0..fabric_count {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let queue = Mutex::new(jobs);

        let pool = &self.pool;
        let telemetry = &self.telemetry;
        let mut per_fabric: Vec<WriterResult> = std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let senders = senders.clone();
                let pool = pool.clone();
                scope.spawn(move || {
                    // Each worker checks a scratch arena out of the fleet
                    // pool and parks it again after the round: warm after
                    // the first round, so steady-state staged decodes
                    // allocate nothing beyond a pooled staging buffer.
                    let mut scratch = pool.checkout_scratch();
                    loop {
                        let job = queue
                            .lock()
                            .expect("decode queue never poisoned")
                            .pop_front();
                        let Some((fabric, name, vbs)) = job else {
                            break;
                        };
                        let mut staging =
                            pool.checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
                        // Failures are not staged: the fabric re-decodes on
                        // demand and reports the error per request.
                        let staged = match devirtualize_into(&vbs, &mut staging, &mut scratch) {
                            Ok(report) => Some((Arc::new(staging), report.micros)),
                            Err(_) => {
                                pool.put(staging);
                                None
                            }
                        };
                        let _ = senders[fabric].send((name, staged));
                    }
                    pool.put_scratch(scratch);
                });
            }
            drop(senders);

            let mut handles = Vec::new();
            for (i, sched) in self.fabrics.iter_mut().enumerate() {
                if expected[i] == 0 && sched.queued_len() == 0 {
                    continue;
                }
                let rx = receivers[i].take().expect("one writer per fabric");
                let wanted = expected[i];
                let clock = telemetry.clock().clone();
                handles.push(scope.spawn(move || {
                    let mut stall = 0u64;
                    for _ in 0..wanted {
                        let waiting = clock.now_micros();
                        let Ok((name, staged)) = rx.recv() else {
                            break;
                        };
                        stall = stall.saturating_add(clock.now_micros().saturating_sub(waiting));
                        if let Some((stream, micros)) = staged {
                            sched.stage_decoded(name, stream, micros);
                        }
                    }
                    (i, sched.process_pending_tagged(), stall)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("fabric writers never panic"))
                .collect()
        });

        per_fabric.sort_by_key(|(i, _, _)| *i);
        let mut out = Vec::new();
        for (fabric, outcomes, stall) in per_fabric {
            self.metrics.pipeline_stall_micros =
                self.metrics.pipeline_stall_micros.saturating_add(stall);
            out.extend(
                outcomes
                    .into_iter()
                    .map(|(local_req, outcome)| (fabric, local_req, outcome)),
            );
        }
        out
    }
}
