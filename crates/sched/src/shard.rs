//! Shard policies: which fabric of a fleet serves an incoming load.
//!
//! A [`crate::MultiFabricScheduler`] serves one prioritized request stream
//! with K devices; the shard policy is the dispatcher deciding, per load,
//! which device's work queue the request joins. Because a Virtual Bit-Stream
//! is position independent, *any* fabric of the right architecture can host
//! any task — the policy only trades off load balance against decode-cache
//! locality:
//!
//! * [`RoundRobin`] — cycle through the fabrics, ignoring state;
//! * [`LeastLoaded`] — most free area first (ties: shorter queue, lower id);
//! * [`CacheAffinity`] — prefer a fabric whose decode cache already holds
//!   the task (a load there skips de-virtualization entirely), falling back
//!   to least-loaded for cold tasks.

use std::cmp::Reverse;
use std::fmt;
use vbs_runtime::FabricId;

/// What a shard policy sees of one fabric when routing a load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricStatus {
    /// Index of the fabric within the fleet (the routing result refers to
    /// positions in the status slice; this is the fleet-wide identity).
    pub fabric: usize,
    /// The fabric id its task manager was tagged with.
    pub id: FabricId,
    /// Free macros on the device right now.
    pub free_area: u32,
    /// Total macros on the device.
    pub total_area: u32,
    /// Load requests already queued on this fabric for the current round.
    pub queued_loads: usize,
    /// Tasks currently resident on the fabric.
    pub residents: usize,
    /// Whether the fabric already holds decode state for the incoming task
    /// (decode cache or staged pipeline output).
    pub holds_decoded: bool,
}

/// A strategy routing one load request to a fabric of the fleet.
///
/// `choose` returns an index **into the status slice** (not a fabric id):
/// the scheduler may present a filtered slice, e.g. only the fabrics a
/// migrating request has not tried yet.
pub trait ShardPolicy: fmt::Debug + Send {
    /// Short policy name for logs and reports.
    fn name(&self) -> &'static str;

    /// Picks the fabric serving `task` from the (non-empty) status slice.
    fn choose(&mut self, task: &str, statuses: &[FabricStatus]) -> usize;
}

/// Cycle through the fabrics regardless of their state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl ShardPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, _task: &str, statuses: &[FabricStatus]) -> usize {
        let pick = self.next % statuses.len();
        self.next = self.next.wrapping_add(1);
        pick
    }
}

/// Most free area first; ties broken by shorter queue, then lower index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

/// The least-loaded choice over a status slice (shared by [`LeastLoaded`]
/// and the [`CacheAffinity`] fallback).
fn least_loaded_index(statuses: &[FabricStatus]) -> usize {
    statuses
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| (s.free_area, Reverse(s.queued_loads), Reverse(s.fabric)))
        .map(|(i, _)| i)
        .expect("choose is called with a non-empty status slice")
}

impl ShardPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn choose(&mut self, _task: &str, statuses: &[FabricStatus]) -> usize {
        least_loaded_index(statuses)
    }
}

/// Prefer fabrics that already hold the task's decoded stream; fall back to
/// least-loaded when no fabric does.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheAffinity;

impl ShardPolicy for CacheAffinity {
    fn name(&self) -> &'static str {
        "cache-affinity"
    }

    fn choose(&mut self, _task: &str, statuses: &[FabricStatus]) -> usize {
        let warm: Vec<usize> = statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.holds_decoded)
            .map(|(i, _)| i)
            .collect();
        match warm.len() {
            0 => least_loaded_index(statuses),
            1 => warm[0],
            // Several warm fabrics: least-loaded among them.
            _ => {
                let subset: Vec<FabricStatus> = warm.iter().map(|&i| statuses[i].clone()).collect();
                warm[least_loaded_index(&subset)]
            }
        }
    }
}

/// Builds a shard policy from its [`ShardPolicy::name`] string, for CLI
/// flags and config files. Returns `None` for unknown names.
pub fn shard_policy_by_name(name: &str) -> Option<Box<dyn ShardPolicy>> {
    match name {
        "round-robin" => Some(Box::<RoundRobin>::default()),
        "least-loaded" => Some(Box::new(LeastLoaded)),
        "cache-affinity" => Some(Box::new(CacheAffinity)),
        _ => None,
    }
}

/// The names accepted by [`shard_policy_by_name`].
pub const SHARD_POLICY_NAMES: &[&str] = &["round-robin", "least-loaded", "cache-affinity"];

#[cfg(test)]
mod tests {
    use super::*;

    fn status(fabric: usize, free: u32, queued: usize, warm: bool) -> FabricStatus {
        FabricStatus {
            fabric,
            id: FabricId(fabric as u32),
            free_area: free,
            total_area: 64,
            queued_loads: queued,
            residents: 0,
            holds_decoded: warm,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let statuses = vec![status(0, 1, 0, false), status(1, 1, 0, false)];
        assert_eq!(rr.choose("t", &statuses), 0);
        assert_eq!(rr.choose("t", &statuses), 1);
        assert_eq!(rr.choose("t", &statuses), 0);
    }

    #[test]
    fn least_loaded_prefers_free_area_then_queue() {
        let mut policy = LeastLoaded;
        let statuses = vec![
            status(0, 10, 0, false),
            status(1, 30, 5, false),
            status(2, 30, 2, false),
        ];
        assert_eq!(policy.choose("t", &statuses), 2);
    }

    #[test]
    fn cache_affinity_routes_to_warm_fabric() {
        let mut policy = CacheAffinity;
        let statuses = vec![
            status(0, 40, 0, false),
            status(1, 5, 3, true),
            status(2, 9, 1, true),
        ];
        // Warm beats free area; among warm fabrics, most free area wins.
        assert_eq!(policy.choose("t", &statuses), 2);
        // Cold task: least-loaded fallback.
        let cold: Vec<FabricStatus> = statuses
            .iter()
            .cloned()
            .map(|mut s| {
                s.holds_decoded = false;
                s
            })
            .collect();
        assert_eq!(policy.choose("t", &cold), 0);
    }

    #[test]
    fn names_roundtrip_through_the_factory() {
        for &name in SHARD_POLICY_NAMES {
            assert_eq!(shard_policy_by_name(name).unwrap().name(), name);
        }
        assert!(shard_policy_by_name("nope").is_none());
    }
}
