//! The reconfiguration controller: fetch, de-virtualize, write.

use crate::error::RuntimeError;
use crate::parallel::DecodeWorkerPool;
use crate::pool::ScratchPool;
use std::time::Instant;
use vbs_arch::{Coord, Device, Rect};
use vbs_bitstream::{BitstreamError, ConfigMemory, FrameRef, TaskBitstream};
use vbs_core::{Devirtualizer, FrameSink, Vbs};
use vbs_telemetry::Telemetry;

/// Timing and composition report of one de-virtualization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeReport {
    /// Number of records expanded.
    pub records: usize,
    /// Number of worker threads used (1 = sequential).
    pub workers: usize,
    /// Wall-clock decode time in microseconds (saturating; a u64 of
    /// microseconds spans ~585k years, so saturation is theoretical).
    pub micros: u64,
    /// Size of the decoded raw configuration in bits.
    pub raw_bits: u64,
}

/// The run-time reconfiguration controller of Figure 2.
///
/// It owns the device's [`ConfigMemory`] and de-virtualizes Virtual
/// Bit-Streams into it at load time. Decoding can use a pool of persistent
/// worker threads ([`DecodeWorkerPool`]) because every record only touches
/// its own cluster's frames — the parallelism the paper highlights in
/// Section II-C. Every decode, sequential or parallel, runs on recycled
/// state from the controller's [`ScratchPool`], so steady-state loads
/// perform zero heap allocations.
#[derive(Debug)]
pub struct ReconfigurationController {
    device: Device,
    memory: ConfigMemory,
    decoder: DecodeWorkerPool,
}

impl ReconfigurationController {
    /// Creates a controller for `device` with a blank configuration memory,
    /// decoding sequentially on a private scratch pool.
    pub fn new(device: Device) -> Self {
        let memory = ConfigMemory::new(&device);
        ReconfigurationController {
            device,
            memory,
            decoder: DecodeWorkerPool::new(1),
        }
    }

    /// Sets the number of de-virtualization decode lanes (at least 1). The
    /// existing scratch pool is kept, so buffers warmed before the switch
    /// stay warm.
    pub fn with_workers(mut self, workers: usize) -> Self {
        let pool = self.decoder.pool().clone();
        let fabric = self.decoder.fabric();
        self.decoder = DecodeWorkerPool::with_pool(workers, pool);
        self.decoder.set_fabric(fabric);
        self
    }

    /// Replaces the controller's scratch pool — multi-fabric deployments
    /// install one shared pool so recycled decode state on any fabric feeds
    /// decodes everywhere. The decode lanes are rebuilt onto the new pool.
    pub fn set_scratch_pool(&mut self, pool: ScratchPool) {
        let fabric = self.decoder.fabric();
        self.decoder = DecodeWorkerPool::with_pool(self.decoder.workers(), pool);
        self.decoder.set_fabric(fabric);
    }

    /// The number of de-virtualization decode lanes.
    pub fn workers(&self) -> usize {
        self.decoder.workers()
    }

    /// The controller's scratch pool (a shared handle).
    pub fn scratch_pool(&self) -> &ScratchPool {
        self.decoder.pool()
    }

    /// Installs the observability registry (onto the scratch pool, reaching
    /// every decode lane) and tags this controller's lane events with
    /// `fabric`. Timing in [`DecodeReport`]s then runs on the registry's
    /// clock, so tests driving a deterministic clock see exact durations.
    pub fn set_telemetry(&self, telemetry: Telemetry, fabric: u16) {
        self.decoder.pool().set_telemetry(telemetry);
        self.decoder.set_fabric(fabric);
    }

    /// Pre-warms one scratch and one staging buffer per decode lane for
    /// `vbs` (see [`DecodeWorkerPool::warm`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream header is
    /// degenerate.
    pub fn warm(&self, vbs: &Vbs) -> Result<(), RuntimeError> {
        self.decoder.warm(vbs)
    }

    /// The device this controller manages.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Read access to the configuration memory.
    pub fn memory(&self) -> &ConfigMemory {
        &self.memory
    }

    /// De-virtualizes `vbs` without writing it to the fabric, returning the
    /// raw task configuration (checked out of the scratch pool — return it
    /// with [`ScratchPool::put`] to recycle) and a timing report. Used by
    /// the decode throughput experiments and by
    /// [`ReconfigurationController::load`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn devirtualize(&self, vbs: &Vbs) -> Result<(TaskBitstream, DecodeReport), RuntimeError> {
        let mut task =
            self.decoder
                .pool()
                .checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
        match self.decoder.decode_into(vbs, &mut task) {
            Ok(report) => Ok((task, report)),
            Err(e) => {
                self.decoder.pool().put(task);
                Err(e)
            }
        }
    }

    /// De-virtualizes `vbs` into a caller-provided bit-stream (reshaped in
    /// place) on the controller's decode lanes — the zero-allocation
    /// buffered-decode handoff for callers that keep or cache decoded
    /// images. Sequential and parallel lane counts produce bit-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn decode_into(
        &self,
        vbs: &Vbs,
        task: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        self.decoder.decode_into(vbs, task)
    }

    /// De-virtualizes `vbs` and writes it into the configuration memory with
    /// its lower-left corner at `origin` — the full run-time load path. The
    /// staging image and every decode buffer come from the scratch pool, so
    /// a warm controller loads without a single heap allocation, at any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] or [`RuntimeError::Memory`] on
    /// failure; the configuration memory is left untouched in that case.
    pub fn load(&mut self, vbs: &Vbs, origin: Coord) -> Result<DecodeReport, RuntimeError> {
        let mut staging =
            self.decoder
                .pool()
                .checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
        let outcome = match self.decoder.decode_into(vbs, &mut staging) {
            Ok(report) => self
                .memory
                .load_task(&staging, origin)
                .map(|()| report)
                .map_err(RuntimeError::Memory),
            Err(e) => Err(e),
        };
        self.decoder.pool().put(staging);
        outcome
    }

    /// De-virtualizes `vbs` **into** the configuration memory at `origin`,
    /// beginning frame writes as soon as each cluster record is expanded —
    /// the streaming load path: instead of buffering the whole decoded task
    /// and then writing it, decode and configuration-memory writes overlap
    /// within the single load. `staging` receives the decoded image as a
    /// byproduct (callers typically pool it or feed a decode cache); the
    /// decode scratch is checked out of the controller's pool, so a warm
    /// call allocates nothing.
    ///
    /// The final memory state is bit-identical to
    /// [`ReconfigurationController::load`]: every frame of the task
    /// rectangle is written exactly once per completed cluster (stale
    /// content of the region is overwritten either way).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] if the task sticks out of the device
    /// (checked before the first write) or [`RuntimeError::Decode`] when the
    /// stream cannot be expanded. Unlike the buffered path, a decode failure
    /// happens *after* some frames may have been written; the controller
    /// then clears the whole target region, so the memory ends blank there
    /// rather than partially configured.
    pub fn load_streaming(
        &mut self,
        vbs: &Vbs,
        origin: Coord,
        staging: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        let (w, h) = (vbs.width().max(1), vbs.height().max(1));
        if origin.x as u32 + w as u32 > self.memory.width() as u32
            || origin.y as u32 + h as u32 > self.memory.height() as u32
        {
            return Err(RuntimeError::Memory(BitstreamError::DoesNotFit {
                origin,
                width: w,
                height: h,
            }));
        }
        let telemetry = self.decoder.pool().telemetry();
        let start = telemetry.now();
        let devirtualizer = Devirtualizer::new(vbs)?;
        let mut scratch = self.decoder.pool().checkout_scratch();
        let mut sink = MemorySink {
            memory: &mut self.memory,
            origin,
        };
        let result = devirtualizer.decode_streaming(staging, &mut scratch, &mut sink);
        self.decoder.pool().put_scratch(scratch);
        if let Err(e) = result {
            // Frames already streamed would leave the region half
            // configured: blank it so a failed load never leaves partial
            // state behind (the region held no resident task — the caller
            // checked — so blank is what it was).
            self.memory
                .clear_region(Rect::new(origin, w, h))
                .expect("target region validated above");
            return Err(RuntimeError::Decode(e));
        }
        Ok(DecodeReport {
            records: vbs.records().len(),
            workers: 1,
            micros: telemetry.now().saturating_sub(start),
            raw_bits: staging.size_bits(),
        })
    }

    /// Writes an already-decoded task bit-stream into the configuration
    /// memory at `origin` — the cache-hit load path: a repeated load of the
    /// same task skips de-virtualization entirely.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when the task sticks out of the
    /// device; the configuration memory is left untouched in that case.
    pub fn load_decoded(
        &mut self,
        task: &TaskBitstream,
        origin: Coord,
    ) -> Result<(), RuntimeError> {
        self.memory.load_task(task, origin)?;
        Ok(())
    }

    /// Clears a region of the configuration memory (task removal).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when the region is out of bounds.
    pub fn unload(&mut self, region: Rect) -> Result<(), RuntimeError> {
        self.memory.clear_region(region)?;
        Ok(())
    }

    /// Relocates the configured frames of `from` so their lower-left corner
    /// lands on `to`, vacating whatever `from` no longer covers — a bulk
    /// word-arena move inside the configuration memory
    /// ([`ConfigMemory::move_region`]), the fast path of run-time relocation
    /// and compaction: no re-decode, no staging buffer, overlap-safe.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when either rectangle is out of
    /// bounds; the memory is left untouched in that case.
    pub fn move_region(&mut self, from: Rect, to: Coord) -> Result<(), RuntimeError> {
        self.memory.move_region(from, to)?;
        Ok(())
    }
}

/// De-virtualizes a Virtual Bit-Stream into a position-independent raw task
/// image on `workers` decode lanes drawing every buffer from `pool`,
/// outside any controller.
///
/// This is the one-shot decoded-stream handoff: de-virtualization only
/// depends on the stream itself (the decoded frames are written wherever
/// the task is later placed), so callers without a controller can expand a
/// stream and hand the finished [`TaskBitstream`] on. The lanes are
/// transient (created per call); long-running callers should hold a
/// [`DecodeWorkerPool`] — or a [`ReconfigurationController`] — whose
/// persistent lanes make repeated decodes allocation-free.
///
/// # Errors
///
/// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
pub fn devirtualize_stream(
    vbs: &Vbs,
    workers: usize,
    pool: &ScratchPool,
) -> Result<(TaskBitstream, DecodeReport), RuntimeError> {
    let lanes = DecodeWorkerPool::with_pool(workers, pool.clone());
    let mut task = pool.checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
    match lanes.decode_into(vbs, &mut task) {
        Ok(report) => Ok((task, report)),
        Err(e) => {
            pool.put(task);
            Err(e)
        }
    }
}

/// De-virtualizes `vbs` into a caller-provided bit-stream with a
/// caller-provided scratch arena — the zero-allocation decode handoff used
/// by per-worker decode pipelines: each worker keeps one
/// [`vbs_core::DecodeScratch`] (typically checked out of a [`ScratchPool`])
/// and a recycled [`TaskBitstream`] alive across loads, so steady-state
/// decoding performs no heap allocation at all. Results are bit-identical
/// to [`devirtualize_stream`].
///
/// # Errors
///
/// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
pub fn devirtualize_into(
    vbs: &Vbs,
    task: &mut TaskBitstream,
    scratch: &mut vbs_core::DecodeScratch,
) -> Result<DecodeReport, RuntimeError> {
    let start = Instant::now();
    let devirtualizer = Devirtualizer::new(vbs)?;
    devirtualizer.decode_into(task, scratch)?;
    Ok(DecodeReport {
        records: vbs.records().len(),
        workers: 1,
        micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
        raw_bits: task.size_bits(),
    })
}

/// A [`FrameSink`] writing task-relative frames into a device's
/// configuration memory at a fixed origin. The target region is validated
/// before streaming starts, so emission cannot fail.
struct MemorySink<'a> {
    memory: &'a mut ConfigMemory,
    origin: Coord,
}

impl FrameSink for MemorySink<'_> {
    fn emit(&mut self, at: Coord, frame: FrameRef<'_>) {
        self.memory.write_frame(
            Coord::new(self.origin.x + at.x, self.origin.y + at.y),
            frame,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;
    use vbs_flow::CadFlow;
    use vbs_netlist::generate::SyntheticSpec;

    fn task_vbs() -> (Device, Vbs, TaskBitstream) {
        let netlist = SyntheticSpec::new("ctrl", 20, 4, 4)
            .with_seed(13)
            .build()
            .unwrap();
        let flow = CadFlow::new(9, 6)
            .unwrap()
            .with_grid(7, 7)
            .with_seed(13)
            .fast();
        let result = flow.run(&netlist).unwrap();
        let vbs = result.vbs(1).unwrap();
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 20, 12).unwrap();
        (device, vbs, result.raw_bitstream().clone())
    }

    #[test]
    fn sequential_and_parallel_decode_agree() {
        let (device, vbs, raw) = task_vbs();
        let sequential = ReconfigurationController::new(device.clone());
        let parallel = ReconfigurationController::new(device).with_workers(4);
        let (a, ra) = sequential.devirtualize(&vbs).unwrap();
        let (b, rb) = parallel.devirtualize(&vbs).unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 0);
        assert_eq!(a.diff_count(&raw).unwrap(), 0);
        assert_eq!(ra.records, rb.records);
        assert_eq!(rb.workers, 4);
    }

    #[test]
    fn load_places_the_task_at_the_requested_origin() {
        let (device, vbs, raw) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        controller.load(&vbs, Coord::new(5, 3)).unwrap();
        // The configuration memory region matches the decoded task.
        let region = Rect::new(Coord::new(5, 3), vbs.width(), vbs.height());
        let readback = controller.memory().read_region(region).unwrap();
        assert_eq!(readback.diff_count(&raw).unwrap(), 0);
        // Somewhere else the fabric is still blank.
        assert!(controller.memory().frame(Coord::new(0, 0)).is_empty());
        controller.unload(region).unwrap();
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn loading_out_of_bounds_fails_cleanly() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        assert!(matches!(
            controller.load(&vbs, Coord::new(19, 11)),
            Err(RuntimeError::Memory(_))
        ));
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn streaming_load_matches_buffered_load_bit_for_bit() {
        let (device, vbs, raw) = task_vbs();
        let mut buffered = ReconfigurationController::new(device.clone());
        buffered.load(&vbs, Coord::new(3, 2)).unwrap();

        let mut streaming = ReconfigurationController::new(device);
        let mut staging = TaskBitstream::empty(*vbs.spec(), 1, 1);
        // Pre-soil the target region to prove streaming overwrites stale
        // frames of recordless clusters too.
        streaming
            .memory
            .frame_mut(Coord::new(4, 3))
            .set_bit(0, true);
        let report = streaming
            .load_streaming(&vbs, Coord::new(3, 2), &mut staging)
            .unwrap();
        assert_eq!(report.records, vbs.records().len());
        assert_eq!(staging.diff_count(&raw).unwrap(), 0);

        let region = Rect::new(Coord::new(3, 2), vbs.width(), vbs.height());
        let a = buffered.memory().read_region(region).unwrap();
        let b = streaming.memory().read_region(region).unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 0);
        assert_eq!(
            buffered.memory().occupied_macros(),
            streaming.memory().occupied_macros()
        );

        // Repeat with the warm pool + staging: still identical.
        streaming.memory.clear_region(region).unwrap();
        streaming
            .load_streaming(&vbs, Coord::new(3, 2), &mut staging)
            .unwrap();
        let b2 = streaming.memory().read_region(region).unwrap();
        assert_eq!(a.diff_count(&b2).unwrap(), 0);
    }

    #[test]
    fn streaming_load_rejects_out_of_bounds_before_writing() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        let mut staging = TaskBitstream::empty(*vbs.spec(), 1, 1);
        assert!(matches!(
            controller.load_streaming(&vbs, Coord::new(19, 11), &mut staging),
            Err(RuntimeError::Memory(_))
        ));
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn repeated_loads_recycle_through_the_scratch_pool() {
        let (device, vbs, raw) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        for _ in 0..3 {
            controller.load(&vbs, Coord::new(1, 1)).unwrap();
            let region = Rect::new(Coord::new(1, 1), vbs.width(), vbs.height());
            let readback = controller.memory().read_region(region).unwrap();
            assert_eq!(readback.diff_count(&raw).unwrap(), 0);
            controller.unload(region).unwrap();
        }
        let stats = controller.scratch_pool().stats();
        assert_eq!(stats.fresh, 1, "one staging buffer serves every load");
        assert_eq!(stats.scratch_fresh, 1, "one scratch serves every load");
        assert!(stats.reused >= 2, "later loads recycle: {stats:?}");
    }

    #[test]
    fn devirtualize_stream_draws_from_the_given_pool() {
        let (_, vbs, raw) = task_vbs();
        let pool = ScratchPool::default();
        let (a, _) = devirtualize_stream(&vbs, 1, &pool).unwrap();
        assert_eq!(a.diff_count(&raw).unwrap(), 0);
        let (b, report) = devirtualize_stream(&vbs, 2, &pool).unwrap();
        assert_eq!(b.diff_count(&raw).unwrap(), 0);
        assert_eq!(report.workers, 2);
        pool.put(a);
        pool.put(b);
        assert!(pool.stats().recycled >= 2);
    }
}
