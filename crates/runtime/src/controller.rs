//! The reconfiguration controller: fetch, de-virtualize, write.

use crate::error::RuntimeError;
use std::time::Instant;
use vbs_arch::{Coord, Device, Rect};
use vbs_bitstream::{ConfigMemory, TaskBitstream};
use vbs_core::{Devirtualizer, Vbs};

/// Timing and composition report of one de-virtualization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeReport {
    /// Number of records expanded.
    pub records: usize,
    /// Number of worker threads used (1 = sequential).
    pub workers: usize,
    /// Wall-clock decode time in microseconds.
    pub micros: u128,
    /// Size of the decoded raw configuration in bits.
    pub raw_bits: u64,
}

/// The run-time reconfiguration controller of Figure 2.
///
/// It owns the device's [`ConfigMemory`] and de-virtualizes Virtual
/// Bit-Streams into it at load time. Decoding can use a pool of worker
/// threads because every record only touches its own cluster's frames — the
/// parallelism the paper highlights in Section II-C.
#[derive(Debug)]
pub struct ReconfigurationController {
    device: Device,
    memory: ConfigMemory,
    workers: usize,
}

impl ReconfigurationController {
    /// Creates a controller for `device` with a blank configuration memory,
    /// decoding sequentially.
    pub fn new(device: Device) -> Self {
        let memory = ConfigMemory::new(&device);
        ReconfigurationController {
            device,
            memory,
            workers: 1,
        }
    }

    /// Sets the number of de-virtualization worker threads (at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The device this controller manages.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Read access to the configuration memory.
    pub fn memory(&self) -> &ConfigMemory {
        &self.memory
    }

    /// De-virtualizes `vbs` without writing it to the fabric, returning the
    /// raw task configuration and a timing report. Used by the decode
    /// throughput experiments and by [`ReconfigurationController::load`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn devirtualize(&self, vbs: &Vbs) -> Result<(TaskBitstream, DecodeReport), RuntimeError> {
        devirtualize_stream(vbs, self.workers)
    }

    /// De-virtualizes `vbs` and writes it into the configuration memory with
    /// its lower-left corner at `origin` — the full run-time load path.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] or [`RuntimeError::Memory`] on
    /// failure; the configuration memory is left untouched in that case.
    pub fn load(&mut self, vbs: &Vbs, origin: Coord) -> Result<DecodeReport, RuntimeError> {
        let (task, report) = self.devirtualize(vbs)?;
        self.memory.load_task(&task, origin)?;
        Ok(report)
    }

    /// Writes an already-decoded task bit-stream into the configuration
    /// memory at `origin` — the cache-hit load path: a repeated load of the
    /// same task skips de-virtualization entirely.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when the task sticks out of the
    /// device; the configuration memory is left untouched in that case.
    pub fn load_decoded(
        &mut self,
        task: &TaskBitstream,
        origin: Coord,
    ) -> Result<(), RuntimeError> {
        self.memory.load_task(task, origin)?;
        Ok(())
    }

    /// Clears a region of the configuration memory (task removal).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when the region is out of bounds.
    pub fn unload(&mut self, region: Rect) -> Result<(), RuntimeError> {
        self.memory.clear_region(region)?;
        Ok(())
    }
}

/// De-virtualizes a Virtual Bit-Stream into a position-independent raw task
/// image, outside any controller.
///
/// This is the decoded-stream handoff used by multi-fabric decode pipelines:
/// de-virtualization only depends on the stream itself (the decoded frames
/// are written wherever the task is later placed), so worker threads can
/// expand streams for a fabric whose controller is busy writing its
/// configuration memory, and hand the finished [`TaskBitstream`] over a
/// channel. [`ReconfigurationController::devirtualize`] is this function
/// bound to the controller's worker count.
///
/// # Errors
///
/// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
pub fn devirtualize_stream(
    vbs: &Vbs,
    workers: usize,
) -> Result<(TaskBitstream, DecodeReport), RuntimeError> {
    let workers = workers.max(1);
    let start = Instant::now();
    let devirtualizer = Devirtualizer::new(vbs)?;
    let mut task = TaskBitstream::empty(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));

    if workers <= 1 || vbs.records().len() < 2 {
        for record in vbs.records() {
            devirtualizer.decode_record_into(record, &mut task)?;
        }
    } else {
        // Parallel decode: workers expand disjoint record subsets into
        // private task images which are merged afterwards — each record
        // only touches its own cluster, so the merge is conflict-free.
        // Workers allocate their partial image lazily (a chunk whose
        // records all fail early never pays for one) and the merge moves
        // frames out of the partials instead of cloning their payloads.
        let records = vbs.records();
        let chunk = records.len().div_ceil(workers);
        let spec = *vbs.spec();
        let (w, h) = (vbs.width().max(1), vbs.height().max(1));
        let partials: Vec<Result<Option<TaskBitstream>, vbs_core::VbsError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = records
                    .chunks(chunk)
                    .map(|slice| {
                        let devirt = &devirtualizer;
                        scope.spawn(move || {
                            let mut local: Option<TaskBitstream> = None;
                            for record in slice {
                                let target =
                                    local.get_or_insert_with(|| TaskBitstream::empty(spec, w, h));
                                devirt.decode_record_into(record, target)?;
                            }
                            Ok(local)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("decode workers never panic"))
                    .collect()
            });
        for partial in partials {
            if let Some(partial) = partial.map_err(RuntimeError::Decode)? {
                merge_frames(&mut task, partial);
            }
        }
    }

    let report = DecodeReport {
        records: vbs.records().len(),
        workers,
        micros: start.elapsed().as_micros(),
        raw_bits: task.size_bits(),
    };
    Ok((task, report))
}

/// Moves every non-empty frame of `from` into `into` (frames are disjoint by
/// construction, so no merge conflicts are possible and nothing is cloned).
fn merge_frames(into: &mut TaskBitstream, from: TaskBitstream) {
    for (at, frame) in from.into_frames() {
        if !frame.is_empty() {
            *into.frame_mut(at) = frame;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;
    use vbs_flow::CadFlow;
    use vbs_netlist::generate::SyntheticSpec;

    fn task_vbs() -> (Device, Vbs, TaskBitstream) {
        let netlist = SyntheticSpec::new("ctrl", 20, 4, 4)
            .with_seed(13)
            .build()
            .unwrap();
        let flow = CadFlow::new(9, 6)
            .unwrap()
            .with_grid(7, 7)
            .with_seed(13)
            .fast();
        let result = flow.run(&netlist).unwrap();
        let vbs = result.vbs(1).unwrap();
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 20, 12).unwrap();
        (device, vbs, result.raw_bitstream().clone())
    }

    #[test]
    fn sequential_and_parallel_decode_agree() {
        let (device, vbs, raw) = task_vbs();
        let sequential = ReconfigurationController::new(device.clone());
        let parallel = ReconfigurationController::new(device).with_workers(4);
        let (a, ra) = sequential.devirtualize(&vbs).unwrap();
        let (b, rb) = parallel.devirtualize(&vbs).unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 0);
        assert_eq!(a.diff_count(&raw).unwrap(), 0);
        assert_eq!(ra.records, rb.records);
        assert_eq!(rb.workers, 4);
    }

    #[test]
    fn load_places_the_task_at_the_requested_origin() {
        let (device, vbs, raw) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        controller.load(&vbs, Coord::new(5, 3)).unwrap();
        // The configuration memory region matches the decoded task.
        let region = Rect::new(Coord::new(5, 3), vbs.width(), vbs.height());
        let readback = controller.memory().read_region(region).unwrap();
        assert_eq!(readback.diff_count(&raw).unwrap(), 0);
        // Somewhere else the fabric is still blank.
        assert!(controller.memory().frame(Coord::new(0, 0)).is_empty());
        controller.unload(region).unwrap();
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn loading_out_of_bounds_fails_cleanly() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        assert!(matches!(
            controller.load(&vbs, Coord::new(19, 11)),
            Err(RuntimeError::Memory(_))
        ));
        assert_eq!(controller.memory().occupied_macros(), 0);
    }
}
