//! The reconfiguration controller: fetch, de-virtualize, write.

use crate::error::RuntimeError;
use crate::fault::{FaultAction, FaultHook};
use crate::parallel::DecodeWorkerPool;
use crate::pool::ScratchPool;
use std::sync::Arc;
use std::time::Instant;
use vbs_arch::{Coord, Device, Rect};
use vbs_bitstream::{BitstreamError, ConfigMemory, FrameRef, TaskBitstream};
use vbs_core::{Devirtualizer, FrameSink, Vbs};
use vbs_telemetry::Telemetry;

/// Timing and composition report of one de-virtualization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeReport {
    /// Number of records expanded.
    pub records: usize,
    /// Number of decode lanes configured on the pool that ran this load
    /// (1 = sequential pool). An adaptive multi-lane pool may still have
    /// decoded sequentially when the record count fell below its
    /// threshold — see `DecodeWorkerPool::set_sequential_threshold`.
    pub workers: usize,
    /// Wall-clock decode time in microseconds (saturating; a u64 of
    /// microseconds spans ~585k years, so saturation is theoretical).
    pub micros: u64,
    /// Size of the decoded raw configuration in bits.
    pub raw_bits: u64,
}

/// The run-time reconfiguration controller of Figure 2.
///
/// It owns the device's [`ConfigMemory`] and de-virtualizes Virtual
/// Bit-Streams into it at load time. Decoding can use a pool of persistent
/// worker threads ([`DecodeWorkerPool`]) because every record only touches
/// its own cluster's frames — the parallelism the paper highlights in
/// Section II-C. Every decode, sequential or parallel, runs on recycled
/// state from the controller's [`ScratchPool`], so steady-state loads
/// perform zero heap allocations.
#[derive(Debug)]
pub struct ReconfigurationController {
    device: Device,
    memory: ConfigMemory,
    decoder: DecodeWorkerPool,
    /// Injected fault model; `None` means a fault-free fabric.
    fault: Option<Arc<dyn FaultHook>>,
    /// Per-frame CRC sidecar for readback verification; `None` until
    /// [`ReconfigurationController::enable_integrity`].
    integrity: Option<IntegrityMap>,
}

/// The per-frame checksum sidecar behind
/// [`ReconfigurationController::verify_region`].
///
/// Checksums are recorded from the *source* image of each write (the
/// decoded task in hand), never from a readback — otherwise a corrupted
/// write would checksum its own corruption and verify clean. Region
/// operations mirror the configuration memory's semantics: loads record
/// the task's frame digests, clears record the zero-frame digest, moves
/// carry digests along and zero the vacated cells.
#[derive(Debug)]
struct IntegrityMap {
    width: u16,
    crcs: Vec<u32>,
    /// Digest of an all-zero frame of this architecture.
    zero_crc: u32,
}

impl IntegrityMap {
    fn of(memory: &ConfigMemory) -> Self {
        let (width, height) = (memory.width(), memory.height());
        let mut crcs = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                crcs.push(memory.frame(Coord::new(x, y)).crc32());
            }
        }
        let stride = memory.store().stride();
        IntegrityMap {
            width,
            crcs,
            zero_crc: vbs_bitstream::crc32_words(&vec![0u64; stride]),
        }
    }

    fn index(&self, at: Coord) -> usize {
        at.y as usize * self.width as usize + at.x as usize
    }

    fn record(&mut self, at: Coord, crc: u32) {
        let i = self.index(at);
        self.crcs[i] = crc;
    }

    fn expected(&self, at: Coord) -> u32 {
        self.crcs[self.index(at)]
    }

    /// Records the digests of a task image loaded at `origin`.
    fn record_load(&mut self, task: &TaskBitstream, origin: Coord) {
        for y in 0..task.height() {
            for x in 0..task.width() {
                let crc = task.frame(Coord::new(x, y)).crc32();
                self.record(Coord::new(origin.x + x, origin.y + y), crc);
            }
        }
    }

    /// Records a cleared region (every frame back to the zero digest).
    fn record_clear(&mut self, region: Rect) {
        for y in region.origin.y..region.origin.y + region.height {
            for x in region.origin.x..region.origin.x + region.width {
                let crc = self.zero_crc;
                self.record(Coord::new(x, y), crc);
            }
        }
    }

    /// Mirrors [`ConfigMemory::move_region`]: digests travel with their
    /// frames, vacated cells fall back to the zero digest.
    fn record_move(&mut self, from: Rect, to: Coord) {
        let mut moved = Vec::with_capacity(from.area() as usize);
        for y in 0..from.height {
            for x in 0..from.width {
                moved.push(self.expected(Coord::new(from.origin.x + x, from.origin.y + y)));
            }
        }
        self.record_clear(from);
        for y in 0..from.height {
            for x in 0..from.width {
                let crc = moved[y as usize * from.width as usize + x as usize];
                self.record(Coord::new(to.x + x, to.y + y), crc);
            }
        }
    }
}

impl ReconfigurationController {
    /// Creates a controller for `device` with a blank configuration memory,
    /// decoding sequentially on a private scratch pool.
    pub fn new(device: Device) -> Self {
        let memory = ConfigMemory::new(&device);
        ReconfigurationController {
            device,
            memory,
            decoder: DecodeWorkerPool::new(1),
            fault: None,
            integrity: None,
        }
    }

    /// Sets the number of de-virtualization decode lanes (at least 1). The
    /// existing scratch pool is kept, so buffers warmed before the switch
    /// stay warm.
    pub fn with_workers(mut self, workers: usize) -> Self {
        let pool = self.decoder.pool().clone();
        let fabric = self.decoder.fabric();
        let threshold = self.decoder.sequential_threshold();
        self.decoder = DecodeWorkerPool::with_pool(workers, pool);
        self.decoder.set_fabric(fabric);
        self.decoder.set_sequential_threshold(threshold);
        self
    }

    /// Replaces the controller's scratch pool — multi-fabric deployments
    /// install one shared pool so recycled decode state on any fabric feeds
    /// decodes everywhere. The decode lanes are rebuilt onto the new pool.
    pub fn set_scratch_pool(&mut self, pool: ScratchPool) {
        let fabric = self.decoder.fabric();
        let threshold = self.decoder.sequential_threshold();
        self.decoder = DecodeWorkerPool::with_pool(self.decoder.workers(), pool);
        self.decoder.set_fabric(fabric);
        self.decoder.set_sequential_threshold(threshold);
    }

    /// Sets the decode pool's sequential-fallback threshold (see
    /// [`DecodeWorkerPool::set_sequential_threshold`]).
    pub fn set_decode_threshold(&self, records: usize) {
        self.decoder.set_sequential_threshold(records);
    }

    /// The number of de-virtualization decode lanes.
    pub fn workers(&self) -> usize {
        self.decoder.workers()
    }

    /// The controller's scratch pool (a shared handle).
    pub fn scratch_pool(&self) -> &ScratchPool {
        self.decoder.pool()
    }

    /// Installs the observability registry (onto the scratch pool, reaching
    /// every decode lane) and tags this controller's lane events with
    /// `fabric`. Timing in [`DecodeReport`]s then runs on the registry's
    /// clock, so tests driving a deterministic clock see exact durations.
    pub fn set_telemetry(&self, telemetry: Telemetry, fabric: u16) {
        self.decoder.pool().set_telemetry(telemetry);
        self.decoder.set_fabric(fabric);
    }

    /// Pre-warms one scratch and one staging buffer per decode lane for
    /// `vbs` (see [`DecodeWorkerPool::warm`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream header is
    /// degenerate.
    pub fn warm(&self, vbs: &Vbs) -> Result<(), RuntimeError> {
        self.decoder.warm(vbs)
    }

    /// The device this controller manages.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Read access to the configuration memory.
    pub fn memory(&self) -> &ConfigMemory {
        &self.memory
    }

    /// Installs a fault model consulted around every configuration-memory
    /// mutation (see [`FaultHook`]); `None` restores the fault-free
    /// fabric.
    pub fn set_fault_hook(&mut self, hook: Option<Arc<dyn FaultHook>>) {
        self.fault = hook;
    }

    /// Whether the installed fault model reports the fabric offline. A
    /// fabric with no hook is always online.
    pub fn is_offline(&self) -> bool {
        self.fault.as_ref().is_some_and(|h| h.offline())
    }

    /// Forwards the driver's logical clock to the fault model (see
    /// [`FaultHook::on_tick`]). A no-op on fault-free fabrics.
    pub fn advance_clock(&self, tick: u64) {
        if let Some(hook) = &self.fault {
            hook.on_tick(tick);
        }
    }

    /// Switches on the per-frame checksum sidecar, snapshotting the
    /// current memory contents as the trusted state. Subsequent loads,
    /// clears and moves keep the sidecar current from their *source* data,
    /// and [`ReconfigurationController::verify_region`] compares readback
    /// against it.
    pub fn enable_integrity(&mut self) {
        if self.integrity.is_none() {
            self.integrity = Some(IntegrityMap::of(&self.memory));
        }
    }

    /// Whether the checksum sidecar is live.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity.is_some()
    }

    /// Readback-verifies a region: recomputes every frame's CRC-32 from
    /// the configuration memory and compares it against the sidecar.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::FabricOffline`] when the fabric cannot be
    /// read, [`RuntimeError::Memory`] with
    /// [`BitstreamError::CrcMismatch`] naming the first corrupted frame,
    /// or [`BitstreamError::OutOfTask`]-style bounds errors. A controller
    /// without the sidecar enabled verifies trivially.
    pub fn verify_region(&self, region: Rect) -> Result<(), RuntimeError> {
        if self.is_offline() {
            return Err(RuntimeError::FabricOffline);
        }
        let Some(integrity) = &self.integrity else {
            return Ok(());
        };
        if region.origin.x as u32 + region.width as u32 > self.memory.width() as u32
            || region.origin.y as u32 + region.height as u32 > self.memory.height() as u32
        {
            return Err(RuntimeError::Memory(BitstreamError::DoesNotFit {
                origin: region.origin,
                width: region.width,
                height: region.height,
            }));
        }
        for y in region.origin.y..region.origin.y + region.height {
            for x in region.origin.x..region.origin.x + region.width {
                let at = Coord::new(x, y);
                if self.memory.frame(at).crc32() != integrity.expected(at) {
                    return Err(RuntimeError::Memory(BitstreamError::CrcMismatch { at }));
                }
            }
        }
        Ok(())
    }

    /// Consults the fault model about a region write. `Ok(Some(bit))`
    /// means "write, then corrupt this bit".
    fn gate_write(&self, region: Rect) -> Result<Option<u64>, RuntimeError> {
        if self.is_offline() {
            return Err(RuntimeError::FabricOffline);
        }
        match self.fault.as_ref().map(|h| h.on_region_write(region)) {
            None | Some(FaultAction::Pass) => Ok(None),
            Some(FaultAction::FailTransient) => Err(RuntimeError::WriteFault {
                region,
                transient: true,
            }),
            Some(FaultAction::FailPersistent) => Err(RuntimeError::WriteFault {
                region,
                transient: false,
            }),
            Some(FaultAction::Corrupt { bit }) => Ok(Some(bit)),
        }
    }

    /// Flips one seed-derived bit inside a just-written region without
    /// updating the sidecar — the injected-corruption half of
    /// [`FaultAction::Corrupt`].
    fn apply_corruption(&mut self, region: Rect, bit: u64) {
        let frame_bits = self.memory.store().spec().raw_bits_per_macro() as u64;
        let total = region.area() as u64 * frame_bits;
        if total == 0 {
            return;
        }
        let index = bit % total;
        let frame = (index / frame_bits) as u32;
        let offset = (index % frame_bits) as usize;
        let at = Coord::new(
            region.origin.x + (frame % region.width as u32) as u16,
            region.origin.y + (frame / region.width as u32) as u16,
        );
        let mut target = self.memory.frame_mut(at);
        let old = target.bit(offset);
        target.set_bit(offset, !old);
    }

    /// De-virtualizes `vbs` without writing it to the fabric, returning the
    /// raw task configuration (checked out of the scratch pool — return it
    /// with [`ScratchPool::put`] to recycle) and a timing report. Used by
    /// the decode throughput experiments and by
    /// [`ReconfigurationController::load`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn devirtualize(&self, vbs: &Vbs) -> Result<(TaskBitstream, DecodeReport), RuntimeError> {
        let mut task =
            self.decoder
                .pool()
                .checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
        match self.decoder.decode_into(vbs, &mut task) {
            Ok(report) => Ok((task, report)),
            Err(e) => {
                self.decoder.pool().put(task);
                Err(e)
            }
        }
    }

    /// De-virtualizes `vbs` into a caller-provided bit-stream (reshaped in
    /// place) on the controller's decode lanes — the zero-allocation
    /// buffered-decode handoff for callers that keep or cache decoded
    /// images. Sequential and parallel lane counts produce bit-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn decode_into(
        &self,
        vbs: &Vbs,
        task: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        self.decoder.decode_into(vbs, task)
    }

    /// Re-expands a stream whose decoded image was demoted to compressed
    /// bytes — the warm-hit path of a tiered decode cache. The machinery is
    /// exactly [`ReconfigurationController::decode_into`] (pooled lanes,
    /// zero allocations once the pools are warm); the separate entry point
    /// exists so cache re-decodes are a named seam callers and telemetry
    /// can distinguish from first decodes.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn redecode_into(
        &self,
        vbs: &Vbs,
        task: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        self.decoder.decode_into(vbs, task)
    }

    /// De-virtualizes `vbs` and writes it into the configuration memory with
    /// its lower-left corner at `origin` — the full run-time load path. The
    /// staging image and every decode buffer come from the scratch pool, so
    /// a warm controller loads without a single heap allocation, at any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] or [`RuntimeError::Memory`] on
    /// failure; the configuration memory is left untouched in that case.
    pub fn load(&mut self, vbs: &Vbs, origin: Coord) -> Result<DecodeReport, RuntimeError> {
        let mut staging =
            self.decoder
                .pool()
                .checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
        let outcome = match self.decoder.decode_into(vbs, &mut staging) {
            Ok(report) => self.write_decoded(&staging, origin).map(|()| report),
            Err(e) => Err(e),
        };
        self.decoder.pool().put(staging);
        outcome
    }

    /// The gated write path every load funnels through: consult the fault
    /// model, write, keep the sidecar current from the source image, then
    /// apply any injected corruption (which the sidecar, fed from the
    /// source, will catch on verify).
    fn write_decoded(&mut self, task: &TaskBitstream, origin: Coord) -> Result<(), RuntimeError> {
        let region = Rect::new(origin, task.width(), task.height());
        let corrupt = self.gate_write(region)?;
        self.memory
            .load_task(task, origin)
            .map_err(RuntimeError::Memory)?;
        if let Some(integrity) = &mut self.integrity {
            integrity.record_load(task, origin);
        }
        if let Some(bit) = corrupt {
            self.apply_corruption(region, bit);
        }
        Ok(())
    }

    /// De-virtualizes `vbs` **into** the configuration memory at `origin`,
    /// beginning frame writes as soon as each cluster record is expanded —
    /// the streaming load path: instead of buffering the whole decoded task
    /// and then writing it, decode and configuration-memory writes overlap
    /// within the single load. `staging` receives the decoded image as a
    /// byproduct (callers typically pool it or feed a decode cache); the
    /// decode scratch is checked out of the controller's pool, so a warm
    /// call allocates nothing.
    ///
    /// The final memory state is bit-identical to
    /// [`ReconfigurationController::load`]: every frame of the task
    /// rectangle is written exactly once per completed cluster (stale
    /// content of the region is overwritten either way).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] if the task sticks out of the device
    /// (checked before the first write) or [`RuntimeError::Decode`] when the
    /// stream cannot be expanded. Unlike the buffered path, a decode failure
    /// happens *after* some frames may have been written; the controller
    /// then clears the whole target region, so the memory ends blank there
    /// rather than partially configured.
    pub fn load_streaming(
        &mut self,
        vbs: &Vbs,
        origin: Coord,
        staging: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        let (w, h) = (vbs.width().max(1), vbs.height().max(1));
        if origin.x as u32 + w as u32 > self.memory.width() as u32
            || origin.y as u32 + h as u32 > self.memory.height() as u32
        {
            return Err(RuntimeError::Memory(BitstreamError::DoesNotFit {
                origin,
                width: w,
                height: h,
            }));
        }
        let region = Rect::new(origin, w, h);
        let corrupt = self.gate_write(region)?;
        let telemetry = self.decoder.pool().telemetry();
        let start = telemetry.now();
        let devirtualizer = Devirtualizer::new(vbs)?;
        let mut scratch = self.decoder.pool().checkout_scratch();
        let mut sink = MemorySink {
            memory: &mut self.memory,
            origin,
        };
        let result = devirtualizer.decode_streaming(staging, &mut scratch, &mut sink);
        self.decoder.pool().put_scratch(scratch);
        if let Err(e) = result {
            // Frames already streamed would leave the region half
            // configured: blank it so a failed load never leaves partial
            // state behind (the region held no resident task — the caller
            // checked — so blank is what it was). The region was bounds
            // validated above, so the clear cannot fail.
            let _ = self.memory.clear_region(region);
            if let Some(integrity) = &mut self.integrity {
                integrity.record_clear(region);
            }
            return Err(RuntimeError::Decode(e));
        }
        if let Some(integrity) = &mut self.integrity {
            integrity.record_load(staging, origin);
        }
        if let Some(bit) = corrupt {
            self.apply_corruption(region, bit);
        }
        Ok(DecodeReport {
            records: vbs.records().len(),
            workers: 1,
            micros: telemetry.now().saturating_sub(start),
            raw_bits: staging.size_bits(),
        })
    }

    /// Writes an already-decoded task bit-stream into the configuration
    /// memory at `origin` — the cache-hit load path: a repeated load of the
    /// same task skips de-virtualization entirely.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when the task sticks out of the
    /// device; the configuration memory is left untouched in that case.
    pub fn load_decoded(
        &mut self,
        task: &TaskBitstream,
        origin: Coord,
    ) -> Result<(), RuntimeError> {
        self.write_decoded(task, origin)
    }

    /// Clears a region of the configuration memory (task removal).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when the region is out of bounds,
    /// or [`RuntimeError::FabricOffline`] when the fabric is unreachable.
    pub fn unload(&mut self, region: Rect) -> Result<(), RuntimeError> {
        if self.is_offline() {
            return Err(RuntimeError::FabricOffline);
        }
        self.memory.clear_region(region)?;
        if let Some(integrity) = &mut self.integrity {
            integrity.record_clear(region);
        }
        Ok(())
    }

    /// Relocates the configured frames of `from` so their lower-left corner
    /// lands on `to`, vacating whatever `from` no longer covers — a bulk
    /// word-arena move inside the configuration memory
    /// ([`ConfigMemory::move_region`]), the fast path of run-time relocation
    /// and compaction: no re-decode, no staging buffer, overlap-safe.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Memory`] when either rectangle is out of
    /// bounds; the memory is left untouched in that case.
    pub fn move_region(&mut self, from: Rect, to: Coord) -> Result<(), RuntimeError> {
        if self.is_offline() {
            return Err(RuntimeError::FabricOffline);
        }
        self.memory.move_region(from, to)?;
        if let Some(integrity) = &mut self.integrity {
            integrity.record_move(from, to);
        }
        Ok(())
    }

    /// Wipes the whole configuration memory (and sidecar) back to blank —
    /// the recovery path after a fabric outage, when whatever the dead
    /// fabric held can no longer be trusted.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::FabricOffline`] while the fabric is still
    /// unreachable.
    pub fn reset_memory(&mut self) -> Result<(), RuntimeError> {
        if self.is_offline() {
            return Err(RuntimeError::FabricOffline);
        }
        let all = Rect::at_origin(self.memory.width(), self.memory.height());
        self.memory.clear_region(all)?;
        if let Some(integrity) = &mut self.integrity {
            integrity.record_clear(all);
        }
        Ok(())
    }
}

/// De-virtualizes a Virtual Bit-Stream into a position-independent raw task
/// image on `workers` decode lanes drawing every buffer from `pool`,
/// outside any controller.
///
/// This is the one-shot decoded-stream handoff: de-virtualization only
/// depends on the stream itself (the decoded frames are written wherever
/// the task is later placed), so callers without a controller can expand a
/// stream and hand the finished [`TaskBitstream`] on. The lanes are
/// transient (created per call); long-running callers should hold a
/// [`DecodeWorkerPool`] — or a [`ReconfigurationController`] — whose
/// persistent lanes make repeated decodes allocation-free.
///
/// # Errors
///
/// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
pub fn devirtualize_stream(
    vbs: &Vbs,
    workers: usize,
    pool: &ScratchPool,
) -> Result<(TaskBitstream, DecodeReport), RuntimeError> {
    let lanes = DecodeWorkerPool::with_pool(workers, pool.clone());
    let mut task = pool.checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1));
    match lanes.decode_into(vbs, &mut task) {
        Ok(report) => Ok((task, report)),
        Err(e) => {
            pool.put(task);
            Err(e)
        }
    }
}

/// De-virtualizes `vbs` into a caller-provided bit-stream with a
/// caller-provided scratch arena — the zero-allocation decode handoff used
/// by per-worker decode pipelines: each worker keeps one
/// [`vbs_core::DecodeScratch`] (typically checked out of a [`ScratchPool`])
/// and a recycled [`TaskBitstream`] alive across loads, so steady-state
/// decoding performs no heap allocation at all. Results are bit-identical
/// to [`devirtualize_stream`].
///
/// # Errors
///
/// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
pub fn devirtualize_into(
    vbs: &Vbs,
    task: &mut TaskBitstream,
    scratch: &mut vbs_core::DecodeScratch,
) -> Result<DecodeReport, RuntimeError> {
    let start = Instant::now();
    let devirtualizer = Devirtualizer::new(vbs)?;
    devirtualizer.decode_into(task, scratch)?;
    Ok(DecodeReport {
        records: vbs.records().len(),
        workers: 1,
        micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
        raw_bits: task.size_bits(),
    })
}

/// A [`FrameSink`] writing task-relative frames into a device's
/// configuration memory at a fixed origin. The target region is validated
/// before streaming starts, so emission cannot fail.
struct MemorySink<'a> {
    memory: &'a mut ConfigMemory,
    origin: Coord,
}

impl FrameSink for MemorySink<'_> {
    fn emit(&mut self, at: Coord, frame: FrameRef<'_>) {
        self.memory.write_frame(
            Coord::new(self.origin.x + at.x, self.origin.y + at.y),
            frame,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;
    use vbs_flow::CadFlow;
    use vbs_netlist::generate::SyntheticSpec;

    fn task_vbs() -> (Device, Vbs, TaskBitstream) {
        let netlist = SyntheticSpec::new("ctrl", 20, 4, 4)
            .with_seed(13)
            .build()
            .unwrap();
        let flow = CadFlow::new(9, 6)
            .unwrap()
            .with_grid(7, 7)
            .with_seed(13)
            .fast();
        let result = flow.run(&netlist).unwrap();
        let vbs = result.vbs(1).unwrap();
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 20, 12).unwrap();
        (device, vbs, result.raw_bitstream().clone())
    }

    #[test]
    fn sequential_and_parallel_decode_agree() {
        let (device, vbs, raw) = task_vbs();
        let sequential = ReconfigurationController::new(device.clone());
        let parallel = ReconfigurationController::new(device).with_workers(4);
        // Force real fan-out so this differential compares the two paths.
        parallel.set_decode_threshold(2);
        let (a, ra) = sequential.devirtualize(&vbs).unwrap();
        let (b, rb) = parallel.devirtualize(&vbs).unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 0);
        assert_eq!(a.diff_count(&raw).unwrap(), 0);
        assert_eq!(ra.records, rb.records);
        assert_eq!(rb.workers, 4);
    }

    #[test]
    fn load_places_the_task_at_the_requested_origin() {
        let (device, vbs, raw) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        controller.load(&vbs, Coord::new(5, 3)).unwrap();
        // The configuration memory region matches the decoded task.
        let region = Rect::new(Coord::new(5, 3), vbs.width(), vbs.height());
        let readback = controller.memory().read_region(region).unwrap();
        assert_eq!(readback.diff_count(&raw).unwrap(), 0);
        // Somewhere else the fabric is still blank.
        assert!(controller.memory().frame(Coord::new(0, 0)).is_empty());
        controller.unload(region).unwrap();
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn loading_out_of_bounds_fails_cleanly() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        assert!(matches!(
            controller.load(&vbs, Coord::new(19, 11)),
            Err(RuntimeError::Memory(_))
        ));
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn streaming_load_matches_buffered_load_bit_for_bit() {
        let (device, vbs, raw) = task_vbs();
        let mut buffered = ReconfigurationController::new(device.clone());
        buffered.load(&vbs, Coord::new(3, 2)).unwrap();

        let mut streaming = ReconfigurationController::new(device);
        let mut staging = TaskBitstream::empty(*vbs.spec(), 1, 1);
        // Pre-soil the target region to prove streaming overwrites stale
        // frames of recordless clusters too.
        streaming
            .memory
            .frame_mut(Coord::new(4, 3))
            .set_bit(0, true);
        let report = streaming
            .load_streaming(&vbs, Coord::new(3, 2), &mut staging)
            .unwrap();
        assert_eq!(report.records, vbs.records().len());
        assert_eq!(staging.diff_count(&raw).unwrap(), 0);

        let region = Rect::new(Coord::new(3, 2), vbs.width(), vbs.height());
        let a = buffered.memory().read_region(region).unwrap();
        let b = streaming.memory().read_region(region).unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 0);
        assert_eq!(
            buffered.memory().occupied_macros(),
            streaming.memory().occupied_macros()
        );

        // Repeat with the warm pool + staging: still identical.
        streaming.memory.clear_region(region).unwrap();
        streaming
            .load_streaming(&vbs, Coord::new(3, 2), &mut staging)
            .unwrap();
        let b2 = streaming.memory().read_region(region).unwrap();
        assert_eq!(a.diff_count(&b2).unwrap(), 0);
    }

    #[test]
    fn streaming_load_rejects_out_of_bounds_before_writing() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        let mut staging = TaskBitstream::empty(*vbs.spec(), 1, 1);
        assert!(matches!(
            controller.load_streaming(&vbs, Coord::new(19, 11), &mut staging),
            Err(RuntimeError::Memory(_))
        ));
        assert_eq!(controller.memory().occupied_macros(), 0);
    }

    #[test]
    fn repeated_loads_recycle_through_the_scratch_pool() {
        let (device, vbs, raw) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        for _ in 0..3 {
            controller.load(&vbs, Coord::new(1, 1)).unwrap();
            let region = Rect::new(Coord::new(1, 1), vbs.width(), vbs.height());
            let readback = controller.memory().read_region(region).unwrap();
            assert_eq!(readback.diff_count(&raw).unwrap(), 0);
            controller.unload(region).unwrap();
        }
        let stats = controller.scratch_pool().stats();
        assert_eq!(stats.fresh, 1, "one staging buffer serves every load");
        assert_eq!(stats.scratch_fresh, 1, "one scratch serves every load");
        assert!(stats.reused >= 2, "later loads recycle: {stats:?}");
    }

    #[derive(Debug, Default)]
    struct ScriptedHook {
        actions: std::sync::Mutex<std::collections::VecDeque<FaultAction>>,
        offline: std::sync::atomic::AtomicBool,
    }

    impl ScriptedHook {
        fn push(&self, action: FaultAction) {
            self.actions.lock().unwrap().push_back(action);
        }

        fn set_offline(&self, offline: bool) {
            self.offline
                .store(offline, std::sync::atomic::Ordering::Relaxed);
        }
    }

    impl FaultHook for ScriptedHook {
        fn on_region_write(&self, _region: Rect) -> FaultAction {
            self.actions
                .lock()
                .unwrap()
                .pop_front()
                .unwrap_or(FaultAction::Pass)
        }

        fn offline(&self) -> bool {
            self.offline.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    #[test]
    fn write_faults_refuse_the_load_and_leave_memory_untouched() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        let hook = Arc::new(ScriptedHook::default());
        controller.set_fault_hook(Some(hook.clone()));

        hook.push(FaultAction::FailTransient);
        assert!(matches!(
            controller.load(&vbs, Coord::new(2, 2)),
            Err(RuntimeError::WriteFault {
                transient: true,
                ..
            })
        ));
        assert_eq!(controller.memory().occupied_macros(), 0);

        hook.push(FaultAction::FailPersistent);
        assert!(matches!(
            controller.load(&vbs, Coord::new(2, 2)),
            Err(RuntimeError::WriteFault {
                transient: false,
                ..
            })
        ));

        // With the script drained the hook passes and the load lands.
        controller.load(&vbs, Coord::new(2, 2)).unwrap();
        assert!(controller.memory().occupied_macros() > 0);
    }

    #[test]
    fn verify_catches_injected_corruption_and_a_rewrite_scrubs_it() {
        let (device, vbs, raw) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        controller.enable_integrity();
        assert!(controller.integrity_enabled());
        let hook = Arc::new(ScriptedHook::default());
        controller.set_fault_hook(Some(hook.clone()));

        let origin = Coord::new(4, 3);
        let region = Rect::new(origin, vbs.width(), vbs.height());
        hook.push(FaultAction::Corrupt { bit: 987_654_321 });
        controller.load(&vbs, origin).unwrap();
        // The sidecar recorded the intended image, so readback disagrees.
        let err = controller.verify_region(region).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Memory(BitstreamError::CrcMismatch { .. })
        ));

        // A scrub rewrite of the same image (fault-free this time) heals it.
        controller.load_decoded(&raw, origin).unwrap();
        controller.verify_region(region).unwrap();

        // Clearing and moving keep the sidecar mirrored too.
        controller.move_region(region, Coord::new(9, 1)).unwrap();
        let moved = Rect::new(Coord::new(9, 1), vbs.width(), vbs.height());
        controller.verify_region(moved).unwrap();
        controller.verify_region(region).unwrap();
        controller.unload(moved).unwrap();
        let whole = Rect::at_origin(controller.memory().width(), controller.memory().height());
        controller.verify_region(whole).unwrap();
    }

    #[test]
    fn verify_catches_silent_bit_rot() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        controller.enable_integrity();
        let origin = Coord::new(0, 0);
        let region = Rect::new(origin, vbs.width(), vbs.height());
        controller.load(&vbs, origin).unwrap();
        controller.verify_region(region).unwrap();

        // Flip one configuration bit behind the controller's back.
        let mut frame = controller.memory.frame_mut(Coord::new(1, 1));
        let old = frame.bit(3);
        frame.set_bit(3, !old);
        let err = controller.verify_region(region).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Memory(BitstreamError::CrcMismatch { at }) if at == Coord::new(1, 1)
        ));
    }

    #[test]
    fn an_offline_fabric_refuses_every_operation_until_recovery() {
        let (device, vbs, _) = task_vbs();
        let mut controller = ReconfigurationController::new(device);
        controller.enable_integrity();
        controller.load(&vbs, Coord::new(1, 1)).unwrap();
        let region = Rect::new(Coord::new(1, 1), vbs.width(), vbs.height());

        let hook = Arc::new(ScriptedHook::default());
        controller.set_fault_hook(Some(hook.clone()));
        hook.set_offline(true);
        assert!(controller.is_offline());
        assert!(matches!(
            controller.load(&vbs, Coord::new(8, 1)),
            Err(RuntimeError::FabricOffline)
        ));
        assert!(matches!(
            controller.unload(region),
            Err(RuntimeError::FabricOffline)
        ));
        assert!(matches!(
            controller.move_region(region, Coord::new(8, 1)),
            Err(RuntimeError::FabricOffline)
        ));
        assert!(matches!(
            controller.verify_region(region),
            Err(RuntimeError::FabricOffline)
        ));
        assert!(matches!(
            controller.reset_memory(),
            Err(RuntimeError::FabricOffline)
        ));

        // Recovery: back online, wipe to a trusted blank state.
        hook.set_offline(false);
        controller.reset_memory().unwrap();
        assert_eq!(controller.memory().occupied_macros(), 0);
        let whole = Rect::at_origin(controller.memory().width(), controller.memory().height());
        controller.verify_region(whole).unwrap();
    }

    #[test]
    fn devirtualize_stream_draws_from_the_given_pool() {
        let (_, vbs, raw) = task_vbs();
        let pool = ScratchPool::default();
        let (a, _) = devirtualize_stream(&vbs, 1, &pool).unwrap();
        assert_eq!(a.diff_count(&raw).unwrap(), 0);
        let (b, report) = devirtualize_stream(&vbs, 2, &pool).unwrap();
        assert_eq!(b.diff_count(&raw).unwrap(), 0);
        assert_eq!(report.workers, 2);
        pool.put(a);
        pool.put(b);
        assert!(pool.stats().recycled >= 2);
    }
}
