//! Run-time management of compressed configurations (Section II-C of the
//! paper).
//!
//! The paper's architecture (Figure 2) keeps Virtual Bit-Streams in an
//! external memory; a **reconfiguration controller** fetches the VBS of a
//! task, de-virtualizes it for the physical location chosen at run time and
//! writes the resulting raw frames into the device's configuration memory.
//! Because the de-virtualization works macro by macro, it can be
//! parallelized; because the VBS is position independent, the same stream can
//! be loaded anywhere the task fits (relocation).
//!
//! This crate models that run-time layer in software:
//!
//! * [`VbsRepository`] — the external memory holding the serialized VBS of
//!   every task;
//! * [`ReconfigurationController`] — fetch + decode (sequentially or on a
//!   persistent [`DecodeWorkerPool`]) + write to the configuration memory;
//! * [`ScratchPool`] — recycled decode state (scratch arenas + staging
//!   images) shared by every decode lane, so steady-state loads perform
//!   zero heap allocations at any worker count;
//! * [`TaskManager`] — on-line placement of tasks on the fabric: finds a free
//!   rectangle, loads, unloads and relocates running tasks;
//! * [`placement`] — pluggable placement policies (first-fit, best-fit,
//!   bottom-left skyline) plus the occupancy/fragmentation view they share.
//!
//! `unsafe` is denied crate-wide and allowed only inside the worker-pool
//! module backing [`DecodeWorkerPool`], whose lifetime-erasure contract is
//! documented there.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod fault;
mod manager;
mod parallel;
pub mod placement;
mod pool;
mod repository;

pub use controller::{
    devirtualize_into, devirtualize_stream, DecodeReport, ReconfigurationController,
};
pub use error::RuntimeError;
pub use fault::{FaultAction, FaultHook};
pub use manager::{LoadedTask, TaskHandle, TaskManager};
pub use parallel::DecodeWorkerPool;
pub use placement::{BestFit, BottomLeftSkyline, FabricId, FabricView, FirstFit, PlacementPolicy};
pub use pool::{ScratchPool, ScratchPoolStats};
pub use repository::VbsRepository;
