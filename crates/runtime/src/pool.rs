//! A shared pool of recycled decode state: decoded-image buffers **and**
//! decode scratch arenas.
//!
//! De-virtualizing a stream needs one decoded-image buffer per load plus one
//! [`DecodeScratch`] per decode lane; at fleet scale those are the two
//! biggest allocations of the hot path (`width · height` frames in one word
//! arena, and the Dijkstra search state sized by the device's routing
//! graph). The pool closes both loops:
//!
//! * **Buffers** — staging images checked out by decode lanes come back when
//!   a decode cache evicts them or a lane abandons a failed decode, and
//!   [`TaskBitstream::reset`] reshapes a recycled buffer in place, so
//!   steady-state decoding recycles memory instead of allocating it.
//! * **Scratches** — every decode lane (the sequential load path, each
//!   worker of a [`crate::DecodeWorkerPool`], the multi-fabric pipeline
//!   workers) checks a [`DecodeScratch`] out per decode and parks it back
//!   afterwards. After warm-up the pool holds one warm scratch per
//!   concurrent lane (`scratch_fresh == lanes`) and no lane ever allocates
//!   again.
//!
//! The pool is `Clone` + thread-safe (a shared handle): one pool typically
//! serves every fabric of a fleet, its schedulers' decode caches and every
//! decode worker thread. `vbs-sched` re-exports it as `BitstreamPool`.

use std::sync::{Arc, Mutex};
use vbs_arch::ArchSpec;
use vbs_bitstream::TaskBitstream;
use vbs_core::{DecodeScratch, Vbs};
use vbs_telemetry::{EventKind, Telemetry, FLEET_FABRIC};

/// Checkout payload tag: a decoded-image buffer.
const CHECKOUT_BUFFER: u64 = 0;
/// Checkout payload tag: a decode scratch arena.
const CHECKOUT_SCRATCH: u64 = 1;

/// Counters of a [`ScratchPool`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchPoolStats {
    /// Buffer checkouts served by a recycled buffer (no allocation).
    pub reused: u64,
    /// Buffer checkouts that had to allocate a fresh buffer.
    pub fresh: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
    /// Buffer returns dropped because the pool was full or the buffer was
    /// still shared (an `Arc` with other owners cannot be recycled).
    pub dropped: u64,
    /// Buffers currently parked in the pool.
    pub parked: usize,
    /// Scratch checkouts served by a parked scratch.
    pub scratch_reused: u64,
    /// Scratch checkouts that had to create a fresh scratch (creation is
    /// allocation-free; the scratch allocates lazily on its first decode
    /// unless it was warmed through [`ScratchPool::warm_scratches`]).
    pub scratch_fresh: u64,
    /// Scratches currently parked in the pool.
    pub scratch_parked: usize,
}

#[derive(Debug)]
struct PoolInner {
    buffers: Vec<TaskBitstream>,
    scratches: Vec<DecodeScratch>,
    reused: u64,
    fresh: u64,
    recycled: u64,
    dropped: u64,
    scratch_reused: u64,
    scratch_fresh: u64,
    /// Observability registry checkout hit/miss events go to. Disabled
    /// (recording no-ops) until a real registry is installed.
    telemetry: Telemetry,
}

impl Default for PoolInner {
    fn default() -> Self {
        PoolInner {
            buffers: Vec::new(),
            scratches: Vec::new(),
            reused: 0,
            fresh: 0,
            recycled: 0,
            dropped: 0,
            scratch_reused: 0,
            scratch_fresh: 0,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// A bounded, thread-safe free-list of decoded-image buffers and decode
/// scratch arenas (see the module docs). Cloning the pool clones the
/// *handle*; all clones share one free-list.
#[derive(Debug, Clone)]
pub struct ScratchPool {
    inner: Arc<Mutex<PoolInner>>,
    capacity: usize,
    scratch_capacity: usize,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool::new(32)
    }
}

impl ScratchPool {
    /// Creates a pool parking at most `capacity` buffers (0 disables buffer
    /// recycling: every checkout allocates, every return drops) and up to 16
    /// scratch arenas.
    pub fn new(capacity: usize) -> Self {
        ScratchPool {
            inner: Arc::new(Mutex::new(PoolInner::default())),
            capacity,
            scratch_capacity: 16,
        }
    }

    /// Installs the observability registry checkout hit/miss events are
    /// recorded into (shared by every clone of this pool handle).
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        self.inner
            .lock()
            .expect("pool lock never poisoned")
            .telemetry = telemetry;
    }

    /// The pool's telemetry registry (a shared handle; disabled until one is
    /// installed).
    pub fn telemetry(&self) -> Telemetry {
        self.inner
            .lock()
            .expect("pool lock never poisoned")
            .telemetry
            .clone()
    }

    /// Checks a buffer out of the pool, reshaped in place to an all-empty
    /// `width` × `height` task of `spec`; allocates a fresh buffer when the
    /// pool is empty. Preference goes to the parked buffer whose frame count
    /// matches the request (reshaping it is free).
    pub fn checkout(&self, spec: ArchSpec, width: u16, height: u16) -> TaskBitstream {
        let wanted = width as usize * height as usize;
        let mut inner = self.inner.lock().expect("pool lock never poisoned");
        let pick = inner
            .buffers
            .iter()
            .position(|b| b.spec() == &spec && b.macro_count() == wanted)
            .or_else(|| {
                if inner.buffers.is_empty() {
                    None
                } else {
                    Some(inner.buffers.len() - 1)
                }
            });
        match pick {
            Some(i) => {
                let mut buffer = inner.buffers.swap_remove(i);
                inner.reused += 1;
                let telemetry = inner.telemetry.clone();
                drop(inner);
                telemetry.event(EventKind::CheckoutHit, FLEET_FABRIC, 0, CHECKOUT_BUFFER, 0);
                buffer.reset(spec, width, height);
                buffer
            }
            None => {
                inner.fresh += 1;
                let telemetry = inner.telemetry.clone();
                drop(inner);
                telemetry.event(EventKind::CheckoutMiss, FLEET_FABRIC, 0, CHECKOUT_BUFFER, 0);
                TaskBitstream::empty(spec, width, height)
            }
        }
    }

    /// Returns a buffer to the pool (dropped silently when full).
    pub fn put(&self, buffer: TaskBitstream) {
        let mut inner = self.inner.lock().expect("pool lock never poisoned");
        if inner.buffers.len() < self.capacity {
            inner.recycled += 1;
            inner.buffers.push(buffer);
        } else {
            inner.dropped += 1;
        }
    }

    /// Recycles a shared decoded image if this handle is its last owner —
    /// the decode-cache eviction path: an evicted entry whose `Arc` is no
    /// longer referenced by any resident load goes back into circulation.
    pub fn recycle(&self, image: Arc<TaskBitstream>) {
        match Arc::try_unwrap(image) {
            Ok(buffer) => self.put(buffer),
            Err(_still_shared) => {
                let mut inner = self.inner.lock().expect("pool lock never poisoned");
                inner.dropped += 1;
            }
        }
    }

    /// Checks a decode scratch out of the pool, creating a fresh (empty,
    /// allocation-free) one when none is parked.
    pub fn checkout_scratch(&self) -> DecodeScratch {
        let mut inner = self.inner.lock().expect("pool lock never poisoned");
        match inner.scratches.pop() {
            Some(scratch) => {
                inner.scratch_reused += 1;
                let telemetry = inner.telemetry.clone();
                drop(inner);
                telemetry.event(EventKind::CheckoutHit, FLEET_FABRIC, 0, CHECKOUT_SCRATCH, 0);
                scratch
            }
            None => {
                inner.scratch_fresh += 1;
                let telemetry = inner.telemetry.clone();
                drop(inner);
                telemetry.event(
                    EventKind::CheckoutMiss,
                    FLEET_FABRIC,
                    0,
                    CHECKOUT_SCRATCH,
                    0,
                );
                DecodeScratch::new()
            }
        }
    }

    /// Parks a decode scratch for reuse by the next lane (dropped silently
    /// when the scratch side of the pool is full). Transient per-load state
    /// is cleared; warmed capacity is kept.
    pub fn put_scratch(&self, mut scratch: DecodeScratch) {
        scratch.reset();
        let mut inner = self.inner.lock().expect("pool lock never poisoned");
        if inner.scratches.len() < self.scratch_capacity {
            inner.scratches.push(scratch);
        }
    }

    /// Pre-warms the pool for `lanes` concurrent decode lanes of `vbs`:
    /// parks `lanes` scratches with every internal buffer pre-reserved for
    /// that stream, plus `lanes + 1` staging buffers of the stream's shape
    /// (one partial per lane and the merge target). A warmed pool
    /// guarantees zero-allocation decodes regardless of which lanes happen
    /// to run concurrently — without it, warm-up depends on scheduling luck
    /// (a lane that never ran in the warm-up phase would allocate its
    /// scratch mid-measurement).
    ///
    /// # Errors
    ///
    /// Returns the stream-header error of [`DecodeScratch::prepare_for`].
    pub fn warm_scratches(&self, vbs: &Vbs, lanes: usize) -> Result<(), vbs_core::VbsError> {
        let mut scratches = Vec::with_capacity(lanes);
        let mut buffers = Vec::with_capacity(lanes + 1);
        buffers.push(self.checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1)));
        for _ in 0..lanes {
            let mut scratch = self.checkout_scratch();
            scratch.prepare_for(vbs)?;
            scratches.push(scratch);
            buffers.push(self.checkout(*vbs.spec(), vbs.width().max(1), vbs.height().max(1)));
        }
        for scratch in scratches {
            self.put_scratch(scratch);
        }
        for buffer in buffers {
            self.put(buffer);
        }
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> ScratchPoolStats {
        let inner = self.inner.lock().expect("pool lock never poisoned");
        ScratchPoolStats {
            reused: inner.reused,
            fresh: inner.fresh,
            recycled: inner.recycled,
            dropped: inner.dropped,
            parked: inner.buffers.len(),
            scratch_reused: inner.scratch_reused,
            scratch_fresh: inner.scratch_fresh,
            scratch_parked: inner.scratches.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::Coord;

    fn spec() -> ArchSpec {
        ArchSpec::paper_example()
    }

    #[test]
    fn checkout_prefers_a_matching_recycled_buffer() {
        let pool = ScratchPool::new(4);
        let mut a = pool.checkout(spec(), 3, 3);
        a.frame_mut(Coord::new(1, 1)).set_bit(0, true);
        pool.put(a);
        // A mismatched checkout still reuses (reshaping is free) …
        pool.put(pool.checkout(spec(), 2, 2));
        // … and a matching one is preferred over allocating.
        let b = pool.checkout(spec(), 3, 3);
        assert_eq!(b.macro_count(), 9);
        assert_eq!(b.popcount(), 0);
        let stats = pool.stats();
        assert_eq!(stats.fresh, 1);
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.recycled, 2);
        assert_eq!(stats.parked, 0);
    }

    #[test]
    fn recycle_only_reclaims_sole_owners() {
        let pool = ScratchPool::new(4);
        let image = Arc::new(pool.checkout(spec(), 2, 2));
        let keep = Arc::clone(&image);
        pool.recycle(image);
        assert_eq!(pool.stats().parked, 0);
        assert_eq!(pool.stats().dropped, 1);
        pool.recycle(keep);
        assert_eq!(pool.stats().parked, 1);
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn zero_capacity_disables_recycling() {
        let pool = ScratchPool::new(0);
        pool.put(pool.checkout(spec(), 2, 2));
        assert_eq!(pool.stats().parked, 0);
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn checkouts_record_hit_and_miss_events() {
        let pool = ScratchPool::new(4);
        let telemetry = Telemetry::new();
        pool.set_telemetry(telemetry.clone());
        assert!(pool.telemetry().same_registry(&telemetry));
        pool.put(pool.checkout(spec(), 2, 2)); // miss
        let _again = pool.checkout(spec(), 2, 2); // hit
        pool.put_scratch(pool.checkout_scratch()); // miss
        let _scratch = pool.checkout_scratch(); // hit
        let events = telemetry.events();
        let kinds: Vec<(EventKind, u64)> = events.iter().map(|e| (e.kind, e.a)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::CheckoutMiss, CHECKOUT_BUFFER),
                (EventKind::CheckoutHit, CHECKOUT_BUFFER),
                (EventKind::CheckoutMiss, CHECKOUT_SCRATCH),
                (EventKind::CheckoutHit, CHECKOUT_SCRATCH),
            ]
        );
        assert!(events.iter().all(|e| e.fabric == FLEET_FABRIC));
    }

    #[test]
    fn scratches_cycle_through_the_pool() {
        let pool = ScratchPool::new(4);
        let a = pool.checkout_scratch();
        let b = pool.checkout_scratch();
        assert_eq!(pool.stats().scratch_fresh, 2);
        pool.put_scratch(a);
        pool.put_scratch(b);
        assert_eq!(pool.stats().scratch_parked, 2);
        let _c = pool.checkout_scratch();
        let stats = pool.stats();
        assert_eq!(stats.scratch_reused, 1);
        assert_eq!(stats.scratch_fresh, 2);
        assert_eq!(stats.scratch_parked, 1);
    }
}
