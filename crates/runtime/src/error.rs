use std::fmt;
use vbs_arch::Rect;

/// Errors produced by the run-time reconfiguration layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// No task with this name exists in the repository.
    UnknownTask {
        /// The requested task name.
        name: String,
    },
    /// No handle with this identifier is currently loaded.
    UnknownHandle {
        /// The stale handle identifier.
        id: u64,
    },
    /// The requested region overlaps an already-loaded task.
    RegionBusy {
        /// The conflicting region.
        region: Rect,
    },
    /// No free region of the fabric can hold the task.
    NoFreeRegion {
        /// Task width in macros.
        width: u16,
        /// Task height in macros.
        height: u16,
    },
    /// De-virtualization failed.
    Decode(vbs_core::VbsError),
    /// Writing to the configuration memory failed.
    Memory(vbs_bitstream::BitstreamError),
    /// A configuration-memory write was refused by the fabric (injected or
    /// device-reported). Transient faults are worth retrying; persistent
    /// ones are not.
    WriteFault {
        /// The region whose write failed.
        region: Rect,
        /// Whether a retry of the same write may succeed.
        transient: bool,
    },
    /// The whole fabric is offline: every configuration-memory operation
    /// fails until it recovers.
    FabricOffline,
    /// A decode lane panicked mid-load. The worker pool contains the panic
    /// and keeps serving later loads; the interrupted load fails with this
    /// error.
    LanePanic {
        /// Index of the lane that panicked.
        lane: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownTask { name } => write!(f, "unknown task `{name}`"),
            RuntimeError::UnknownHandle { id } => write!(f, "unknown task handle {id}"),
            RuntimeError::RegionBusy { region } => {
                write!(f, "region {region} overlaps a loaded task")
            }
            RuntimeError::NoFreeRegion { width, height } => {
                write!(f, "no free {width}x{height} region on the fabric")
            }
            RuntimeError::Decode(e) => write!(f, "de-virtualization failed: {e}"),
            RuntimeError::Memory(e) => write!(f, "configuration memory error: {e}"),
            RuntimeError::WriteFault { region, transient } => write!(
                f,
                "{} write fault in region {region}",
                if *transient {
                    "transient"
                } else {
                    "persistent"
                }
            ),
            RuntimeError::FabricOffline => write!(f, "fabric is offline"),
            RuntimeError::LanePanic { lane, message } => {
                write!(f, "decode lane {lane} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Decode(e) => Some(e),
            RuntimeError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vbs_core::VbsError> for RuntimeError {
    fn from(e: vbs_core::VbsError) -> Self {
        RuntimeError::Decode(e)
    }
}

impl From<vbs_bitstream::BitstreamError> for RuntimeError {
    fn from(e: vbs_bitstream::BitstreamError) -> Self {
        RuntimeError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
        let e = RuntimeError::NoFreeRegion {
            width: 4,
            height: 5,
        };
        assert!(e.to_string().contains("4x5"));
    }
}
