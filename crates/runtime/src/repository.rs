//! The external memory holding the Virtual Bit-Streams of every task
//! (the "external memory" block of Figure 2).

use crate::error::RuntimeError;
use std::collections::BTreeMap;
use vbs_core::Vbs;

/// A named store of serialized Virtual Bit-Streams.
///
/// Streams are kept in their serialized byte form — exactly what would sit in
/// an external flash or DDR memory — and are re-parsed on fetch, so the
/// repository also exercises the binary format end to end.
#[derive(Debug, Clone, Default)]
pub struct VbsRepository {
    streams: BTreeMap<String, Vec<u8>>,
}

impl VbsRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        VbsRepository::default()
    }

    /// Stores a task's VBS under `name`, replacing any previous stream with
    /// the same name. Returns the size of the serialized stream in bytes.
    pub fn store(&mut self, name: impl Into<String>, vbs: &Vbs) -> usize {
        let bytes = vbs.to_bytes();
        let len = bytes.len();
        self.streams.insert(name.into(), bytes);
        len
    }

    /// Stores an already-serialized stream.
    pub fn store_bytes(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.streams.insert(name.into(), bytes);
    }

    /// Fetches and parses the VBS of a task.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTask`] for unknown names and
    /// [`RuntimeError::Decode`] if the stored bytes are corrupted.
    pub fn fetch(&self, name: &str) -> Result<Vbs, RuntimeError> {
        let bytes = self
            .streams
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownTask {
                name: name.to_string(),
            })?;
        Vbs::from_bytes(bytes).map_err(RuntimeError::from)
    }

    /// Raw serialized size of a stored task, in bytes.
    pub fn stored_size(&self, name: &str) -> Option<usize> {
        self.streams.get(name).map(Vec::len)
    }

    /// The raw serialized bytes of a stored task — what a fault injector
    /// mutates to model external-memory corruption.
    pub fn bytes(&self, name: &str) -> Option<&[u8]> {
        self.streams.get(name).map(Vec::as_slice)
    }

    /// Names of the stored tasks, sorted.
    pub fn task_names(&self) -> Vec<&str> {
        self.streams.keys().map(String::as_str).collect()
    }

    /// Number of stored tasks.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::ArchSpec;

    #[test]
    fn store_fetch_roundtrip() {
        let vbs = Vbs::new(ArchSpec::paper_example(), 1, 3, 3, Vec::new()).unwrap();
        let mut repo = VbsRepository::new();
        let size = repo.store("empty", &vbs);
        assert!(size > 0);
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.stored_size("empty"), Some(size));
        assert_eq!(repo.fetch("empty").unwrap(), vbs);
        assert!(matches!(
            repo.fetch("missing"),
            Err(RuntimeError::UnknownTask { .. })
        ));
    }

    #[test]
    fn corrupted_streams_surface_as_decode_errors() {
        let mut repo = VbsRepository::new();
        repo.store_bytes("bad", vec![0xff; 3]);
        assert!(matches!(repo.fetch("bad"), Err(RuntimeError::Decode(_))));
        assert_eq!(repo.task_names(), vec!["bad"]);
    }
}
