//! Pluggable on-line placement policies.
//!
//! The paper's fast-relocation capability makes *where* to put a task a pure
//! run-time decision, so the placement heuristic becomes a policy choice.
//! [`PlacementPolicy`] abstracts it behind one method; the provided
//! implementations are:
//!
//! * [`FirstFit`] — the original bottom-left raster scan (lowest row, then
//!   lowest column, first rectangle that fits);
//! * [`BestFit`] — minimum-leftover-area: place in the maximal free
//!   rectangle whose area exceeds the task's by the least, which preserves
//!   large contiguous regions for future large tasks;
//! * [`BottomLeftSkyline`] — classic skyline packing: per-column the fabric
//!   is only used above the highest loaded task, and the candidate with the
//!   lowest resulting top edge wins. Wastes holes but keeps the free space
//!   in one simply-shaped region.

use std::fmt;
use vbs_arch::{Coord, Rect};

/// Identifier of one fabric (device) in a multi-fabric deployment.
///
/// A single-device setup never needs to mention it — everything defaults to
/// fabric 0 — but once one request stream is sharded over several devices,
/// occupancy views and per-shard statistics carry the id of the fabric they
/// describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct FabricId(pub u32);

impl fmt::Display for FabricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fabric{}", self.0)
    }
}

/// A snapshot of the fabric's occupancy: device dimensions plus the regions
/// of every loaded task. All placement policies and the fragmentation
/// metrics operate on this view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricView {
    id: FabricId,
    width: u16,
    height: u16,
    occupied: Vec<Rect>,
}

impl FabricView {
    /// Creates a view of a `width` × `height` fabric with the given loaded
    /// regions (assumed pairwise disjoint and in bounds). The view describes
    /// fabric 0; use [`FabricView::with_id`] in multi-fabric setups.
    pub fn new(width: u16, height: u16, occupied: Vec<Rect>) -> Self {
        FabricView {
            id: FabricId::default(),
            width,
            height,
            occupied,
        }
    }

    /// Tags the view with the fabric it describes.
    pub fn with_id(mut self, id: FabricId) -> Self {
        self.id = id;
        self
    }

    /// The fabric this view describes.
    pub const fn id(&self) -> FabricId {
        self.id
    }

    /// Device width in macros.
    pub const fn width(&self) -> u16 {
        self.width
    }

    /// Device height in macros.
    pub const fn height(&self) -> u16 {
        self.height
    }

    /// The loaded regions.
    pub fn occupied(&self) -> &[Rect] {
        &self.occupied
    }

    /// Whether `region` lies entirely on the fabric.
    pub fn in_bounds(&self, region: &Rect) -> bool {
        region.origin.x as u32 + region.width as u32 <= self.width as u32
            && region.origin.y as u32 + region.height as u32 <= self.height as u32
    }

    /// Whether `region` is in bounds and overlaps no loaded task.
    pub fn is_free(&self, region: &Rect) -> bool {
        self.in_bounds(region) && !self.occupied.iter().any(|r| r.intersects(region))
    }

    /// Total number of macros on the fabric.
    pub fn total_area(&self) -> u32 {
        self.width as u32 * self.height as u32
    }

    /// Number of free macros (loaded regions are disjoint by invariant).
    pub fn free_area(&self) -> u32 {
        self.total_area() - self.occupied.iter().map(Rect::area).sum::<u32>()
    }

    /// All maximal free rectangles: free rectangles that cannot be extended
    /// in any direction. Computed with a per-row histogram sweep, fine for
    /// the fabric sizes this workspace simulates.
    pub fn free_rectangles(&self) -> Vec<Rect> {
        let (w, h) = (self.width as usize, self.height as usize);
        if w == 0 || h == 0 {
            return Vec::new();
        }
        let mut blocked = vec![false; w * h];
        for rect in &self.occupied {
            for at in rect.iter() {
                if (at.x as usize) < w && (at.y as usize) < h {
                    blocked[at.y as usize * w + at.x as usize] = true;
                }
            }
        }
        let free = |x: usize, y: usize| !blocked[y * w + x];

        // For every row (as the top edge), a histogram of free run heights;
        // every local maximum of the histogram spans one candidate.
        let mut candidates: Vec<Rect> = Vec::new();
        let mut heights = vec![0u16; w];
        for y in 0..h {
            for (x, height) in heights.iter_mut().enumerate() {
                *height = if free(x, y) { *height + 1 } else { 0 };
            }
            // Stack of (left index, height); the trailing 0 bar flushes
            // every open rectangle at the right edge.
            let mut stack: Vec<(usize, u16)> = Vec::new();
            for (x, &current) in heights.iter().chain(std::iter::once(&0)).enumerate() {
                let mut left = x;
                while let Some(&(l, hgt)) = stack.last() {
                    if hgt <= current {
                        break;
                    }
                    stack.pop();
                    left = l;
                    // Rectangle of height `hgt` spanning columns [l, x).
                    candidates.push(Rect::new(
                        Coord::new(l as u16, (y as u16 + 1) - hgt),
                        (x - l) as u16,
                        hgt,
                    ));
                }
                if current > 0 && stack.last().is_none_or(|&(_, hgt)| hgt < current) {
                    stack.push((left, current));
                }
            }
        }

        // Keep only top-maximal rectangles (the sweep already guarantees
        // left/right/bottom maximality) and dedup.
        candidates.retain(|r| {
            let top = r.origin.y + r.height;
            top as usize == h
                || (r.origin.x..r.origin.x + r.width).any(|x| !free(x as usize, top as usize))
        });
        candidates.sort_by_key(|r| (r.origin.y, r.origin.x, r.width, r.height));
        candidates.dedup();
        candidates
    }

    /// Area of the largest free rectangle, 0 when the fabric is full.
    pub fn largest_free_rect_area(&self) -> u32 {
        self.free_rectangles()
            .iter()
            .map(Rect::area)
            .max()
            .unwrap_or(0)
    }

    /// External fragmentation in `[0, 1]`: the share of free macros *not* in
    /// the largest free rectangle. 0 when the free space is one rectangle
    /// (or the fabric is full), approaching 1 as the free space shatters.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_area();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_rect_area() as f64 / free as f64
    }
}

/// A strategy choosing where on the fabric a `width` × `height` task goes.
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// Short policy name for logs and reports.
    fn name(&self) -> &'static str;

    /// Returns the origin of a free `width` × `height` rectangle, or `None`
    /// when the policy finds no feasible position.
    fn place(&self, width: u16, height: u16, fabric: &FabricView) -> Option<Coord>;
}

/// Bottom-left raster-scan first-fit: the original `TaskManager` behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(&self, width: u16, height: u16, fabric: &FabricView) -> Option<Coord> {
        if width == 0 || height == 0 || width > fabric.width() || height > fabric.height() {
            return None;
        }
        for y in 0..=(fabric.height() - height) {
            for x in 0..=(fabric.width() - width) {
                let candidate = Rect::new(Coord::new(x, y), width, height);
                if fabric.is_free(&candidate) {
                    return Some(candidate.origin);
                }
            }
        }
        None
    }
}

/// Minimum-leftover-area best-fit over the maximal free rectangles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn name(&self) -> &'static str {
        "best-fit"
    }

    fn place(&self, width: u16, height: u16, fabric: &FabricView) -> Option<Coord> {
        if width == 0 || height == 0 {
            return None;
        }
        fabric
            .free_rectangles()
            .into_iter()
            .filter(|r| r.width >= width && r.height >= height)
            .min_by_key(|r| {
                (
                    r.area() - width as u32 * height as u32,
                    r.origin.y,
                    r.origin.x,
                )
            })
            .map(|r| r.origin)
    }
}

/// Skyline packing: tasks sit above the per-column high-water mark, and the
/// candidate minimizing that mark (then the column) wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BottomLeftSkyline;

impl PlacementPolicy for BottomLeftSkyline {
    fn name(&self) -> &'static str {
        "bottom-left-skyline"
    }

    fn place(&self, width: u16, height: u16, fabric: &FabricView) -> Option<Coord> {
        if width == 0 || height == 0 || width > fabric.width() || height > fabric.height() {
            return None;
        }
        let mut skyline = vec![0u16; fabric.width() as usize];
        for rect in fabric.occupied() {
            let top = rect.origin.y + rect.height;
            for x in rect.origin.x..rect.origin.x + rect.width {
                let col = &mut skyline[x as usize];
                *col = (*col).max(top);
            }
        }
        let mut best: Option<Coord> = None;
        for x in 0..=(fabric.width() - width) {
            let y = (x..x + width)
                .map(|col| skyline[col as usize])
                .max()
                .unwrap_or(0);
            if y as u32 + height as u32 > fabric.height() as u32 {
                continue;
            }
            if best.is_none_or(|b| (y, x) < (b.y, b.x)) {
                best = Some(Coord::new(x, y));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(occupied: Vec<Rect>) -> FabricView {
        FabricView::new(8, 6, occupied)
    }

    #[test]
    fn empty_fabric_is_one_free_rectangle() {
        let v = view(Vec::new());
        assert_eq!(v.free_rectangles(), vec![Rect::at_origin(8, 6)]);
        assert_eq!(v.free_area(), 48);
        assert_eq!(v.fragmentation(), 0.0);
    }

    #[test]
    fn free_rectangles_are_maximal_and_cover_holes() {
        // One 4x6 block in the middle leaves two free columns bands.
        let v = view(vec![Rect::new(Coord::new(2, 0), 4, 6)]);
        let rects = v.free_rectangles();
        assert_eq!(
            rects,
            vec![
                Rect::new(Coord::new(0, 0), 2, 6),
                Rect::new(Coord::new(6, 0), 2, 6),
            ]
        );
        assert_eq!(v.largest_free_rect_area(), 12);
        assert!(v.fragmentation() > 0.4);
    }

    #[test]
    fn first_fit_scans_bottom_left() {
        let v = view(vec![Rect::new(Coord::new(0, 0), 3, 2)]);
        assert_eq!(FirstFit.place(2, 2, &v), Some(Coord::new(3, 0)));
        assert_eq!(FirstFit.place(8, 6, &v), None);
        assert_eq!(FirstFit.place(8, 4, &v), Some(Coord::new(0, 2)));
    }

    #[test]
    fn best_fit_prefers_the_tightest_hole() {
        // A 2x2 hole at (0,0)..(2,2) (via two blocks) and lots of open space
        // to the right: a 2x2 task should take the tight hole, not the
        // large region first-fit-style.
        let v = view(vec![
            Rect::new(Coord::new(2, 0), 1, 6),
            Rect::new(Coord::new(0, 2), 2, 4),
        ]);
        assert_eq!(BestFit.place(2, 2, &v), Some(Coord::new(0, 0)));
        // First-fit picks the same corner here, but on the mirrored layout
        // the policies diverge.
        let v2 = view(vec![
            Rect::new(Coord::new(5, 0), 1, 6),
            Rect::new(Coord::new(6, 2), 2, 4),
        ]);
        assert_eq!(FirstFit.place(2, 2, &v2), Some(Coord::new(0, 0)));
        assert_eq!(BestFit.place(2, 2, &v2), Some(Coord::new(6, 0)));
    }

    #[test]
    fn skyline_ignores_holes_below_tasks() {
        // A floating task leaves a hole beneath it; skyline refuses the
        // hole, first-fit takes it.
        let v = view(vec![Rect::new(Coord::new(0, 3), 4, 2)]);
        assert_eq!(FirstFit.place(3, 2, &v), Some(Coord::new(0, 0)));
        assert_eq!(BottomLeftSkyline.place(3, 2, &v), Some(Coord::new(4, 0)));
    }

    #[test]
    fn policies_respect_bounds() {
        let v = view(Vec::new());
        for policy in [
            &FirstFit as &dyn PlacementPolicy,
            &BestFit,
            &BottomLeftSkyline,
        ] {
            assert_eq!(policy.place(9, 1, &v), None, "{}", policy.name());
            assert_eq!(policy.place(1, 7, &v), None, "{}", policy.name());
            assert_eq!(policy.place(8, 6, &v), Some(Coord::new(0, 0)));
        }
    }
}
