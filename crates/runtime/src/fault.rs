//! The fault-injection seam of the runtime: a hook the
//! [`crate::ReconfigurationController`] consults before every
//! configuration-memory mutation.
//!
//! Real reconfiguration ports fail: a frame write can be refused
//! transiently (bus contention, ECC retry) or persistently (a dead
//! column), and a whole fabric can drop off the management network and
//! come back later. The controller models all of that through one trait so
//! the scheduler's self-healing paths (retry, re-placement, quarantine)
//! can be driven deterministically by an injected implementation — see
//! `vbs-sched`'s `FaultInjector` — while production controllers simply run
//! with no hook installed and pay one `Option` check per region write.

use std::fmt;
use vbs_arch::Rect;

/// What a [`FaultHook`] decides about one region write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The write proceeds untouched.
    Pass,
    /// The write is refused; a retry may succeed.
    FailTransient,
    /// The write is refused; retries will keep failing.
    FailPersistent,
    /// The write proceeds, but the fabric then flips one bit inside the
    /// written region (`bit` indexes the region's frame bits row-major,
    /// taken modulo the actual bit count). The integrity sidecar records
    /// the *intended* contents, so a readback verify catches this.
    Corrupt {
        /// Seed-derived index of the bit to flip.
        bit: u64,
    },
}

/// A fault model consulted by the controller around configuration-memory
/// mutations. Implementations must be deterministic given their own seed
/// and call sequence — the chaos goldens replay them twice and diff.
pub trait FaultHook: Send + Sync + fmt::Debug {
    /// Decides the fate of a region write (task load, scrub rewrite). The
    /// controller calls this exactly once per attempted region mutation,
    /// *after* the offline check.
    fn on_region_write(&self, region: Rect) -> FaultAction;

    /// Whether the whole fabric is currently offline. While true, every
    /// controller operation fails with
    /// [`crate::RuntimeError::FabricOffline`] without consulting
    /// [`FaultHook::on_region_write`].
    fn offline(&self) -> bool {
        false
    }

    /// Observes the driver's logical clock. The controller forwards every
    /// clock advance here so time-keyed fault models (outage windows) track
    /// replay time without a side channel to the driver.
    fn on_tick(&self, _tick: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct AlwaysPass;
    impl FaultHook for AlwaysPass {
        fn on_region_write(&self, _region: Rect) -> FaultAction {
            FaultAction::Pass
        }
    }

    #[test]
    fn hooks_default_to_online() {
        let hook = AlwaysPass;
        assert!(!hook.offline());
        assert_eq!(
            hook.on_region_write(Rect::at_origin(1, 1)),
            FaultAction::Pass
        );
    }
}
