//! On-line task management: placing, loading, relocating and evicting
//! hardware tasks on the fabric at run time.

use crate::controller::{DecodeReport, ReconfigurationController};
use crate::error::RuntimeError;
use crate::placement::{FabricId, FabricView, FirstFit, PlacementPolicy};
use crate::pool::ScratchPool;
use crate::repository::VbsRepository;
use vbs_arch::{Coord, Rect};
use vbs_bitstream::{BitstreamError, TaskBitstream};
use vbs_core::Vbs;

/// Identifier of a loaded task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskHandle(pub u64);

/// A task currently configured on the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedTask {
    /// Handle identifying this instance.
    pub handle: TaskHandle,
    /// Name of the task in the repository.
    pub name: String,
    /// Region of the fabric the task occupies.
    pub region: Rect,
}

/// The on-line manager: keeps track of which rectangles of the fabric are
/// busy, picks a position for each incoming task through a pluggable
/// [`PlacementPolicy`] (first-fit bottom-left by default) and drives the
/// [`ReconfigurationController`] to load, unload and relocate tasks.
/// Relocation reuses the *same* Virtual Bit-Stream — no offline
/// re-implementation is needed, which is the head-line capability of the
/// paper.
#[derive(Debug)]
pub struct TaskManager {
    controller: ReconfigurationController,
    repository: VbsRepository,
    loaded: Vec<LoadedTask>,
    next_handle: u64,
    policy: Box<dyn PlacementPolicy>,
    fabric_id: FabricId,
}

impl TaskManager {
    /// Creates a manager over a controller and a task repository, placing
    /// with [`FirstFit`] and describing fabric 0.
    pub fn new(controller: ReconfigurationController, repository: VbsRepository) -> Self {
        TaskManager {
            controller,
            repository,
            loaded: Vec::new(),
            next_handle: 1,
            policy: Box::new(FirstFit),
            fabric_id: FabricId::default(),
        }
    }

    /// Replaces the placement policy used by [`TaskManager::load`].
    pub fn with_policy(mut self, policy: Box<dyn PlacementPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Tags this manager's device as one fabric of a multi-fabric fleet;
    /// [`TaskManager::fabric_view`] snapshots carry the id.
    pub fn with_fabric_id(mut self, id: FabricId) -> Self {
        self.fabric_id = id;
        self
    }

    /// The fabric this manager drives.
    pub const fn fabric_id(&self) -> FabricId {
        self.fabric_id
    }

    /// The active placement policy.
    pub fn policy(&self) -> &dyn PlacementPolicy {
        self.policy.as_ref()
    }

    /// A snapshot of the fabric occupancy (device size + loaded regions).
    pub fn fabric_view(&self) -> FabricView {
        let device = self.controller.device();
        FabricView::new(
            device.width(),
            device.height(),
            self.loaded.iter().map(|t| t.region).collect(),
        )
        .with_id(self.fabric_id)
    }

    /// The tasks currently loaded, in load order.
    pub fn loaded_tasks(&self) -> &[LoadedTask] {
        &self.loaded
    }

    /// Read access to the repository.
    pub fn repository(&self) -> &VbsRepository {
        &self.repository
    }

    /// Mutable access to the repository (to register new tasks at run time).
    pub fn repository_mut(&mut self) -> &mut VbsRepository {
        &mut self.repository
    }

    /// Read access to the controller (and through it the config memory).
    pub fn controller(&self) -> &ReconfigurationController {
        &self.controller
    }

    /// Mutable access to the controller — the seam the scheduler uses to
    /// install a fault hook, enable integrity tracking and scrub-rewrite a
    /// resident after a readback mismatch.
    pub fn controller_mut(&mut self) -> &mut ReconfigurationController {
        &mut self.controller
    }

    /// Forgets every resident without touching the hardware — the
    /// evacuation path when the fabric itself has failed: there is nothing
    /// to clear (the device is unreachable), but the bookkeeping must be
    /// emptied so the survivors of a later recovery start from a blank
    /// fabric. Returns the abandoned residents, oldest first, so the
    /// caller can re-place them elsewhere.
    pub fn evacuate(&mut self) -> Vec<LoadedTask> {
        std::mem::take(&mut self.loaded)
    }

    /// Installs a (typically fleet-shared) scratch pool on the controller,
    /// so every decode this manager performs recycles through it.
    pub fn set_scratch_pool(&mut self, pool: ScratchPool) {
        self.controller.set_scratch_pool(pool);
    }

    /// Loads a task at an explicit position.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RegionBusy`] when the target rectangle
    /// overlaps a loaded task, plus any fetch/decode/memory error.
    pub fn load_at(&mut self, name: &str, origin: Coord) -> Result<TaskHandle, RuntimeError> {
        let vbs = self.repository.fetch(name)?;
        let region = Rect::new(origin, vbs.width(), vbs.height());
        self.ensure_region_free(&region, None)?;
        self.controller.load(&vbs, origin)?;
        Ok(self.register(name, region))
    }

    /// Loads a task at an explicit position through the **streaming** write
    /// path: configuration-memory frames are written as each cluster record
    /// decodes, instead of after the whole stream is buffered. `staging`
    /// receives the decoded image (position independent, suitable for a
    /// decode cache); the controller's scratch pool provides every other
    /// buffer, so a warm call allocates nothing. The final memory state is
    /// bit-identical to [`TaskManager::load_at`].
    ///
    /// # Errors
    ///
    /// As [`TaskManager::load_at`]. On a decode failure the target region is
    /// blanked (it held no task — see
    /// [`ReconfigurationController::load_streaming`]).
    pub fn load_streaming_at(
        &mut self,
        name: &str,
        vbs: &Vbs,
        staging: &mut TaskBitstream,
        origin: Coord,
    ) -> Result<(TaskHandle, DecodeReport), RuntimeError> {
        let region = Rect::new(origin, vbs.width().max(1), vbs.height().max(1));
        self.ensure_region_free(&region, None)?;
        let report = self.controller.load_streaming(vbs, origin, staging)?;
        Ok((self.register(name, region), report))
    }

    /// De-virtualizes `vbs` into `staging` on the controller's decode lanes
    /// (zero allocations when the pool is warm, at any worker count) — the
    /// buffered-decode handoff for callers that cache decoded images.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn devirtualize_into(
        &mut self,
        vbs: &Vbs,
        staging: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        self.controller.decode_into(vbs, staging)
    }

    /// Re-expands a stream whose decoded image fell out of a tiered cache's
    /// hot tier (see [`ReconfigurationController::redecode_into`]): same
    /// pooled lanes and zero steady-state allocations as
    /// [`TaskManager::devirtualize_into`], kept as a separate seam so
    /// warm-hit re-decodes stay distinguishable from first decodes.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream cannot be expanded.
    pub fn redevirtualize_into(
        &mut self,
        vbs: &Vbs,
        staging: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        self.controller.redecode_into(vbs, staging)
    }

    /// Loads an already-decoded task bit-stream at an explicit position —
    /// the cache-hit path of the scheduler: a repeated load of the same task
    /// skips the fetch and de-virtualization entirely.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RegionBusy`] when the target rectangle
    /// overlaps a loaded task, plus any memory error.
    pub fn load_decoded_at(
        &mut self,
        name: &str,
        task: &TaskBitstream,
        origin: Coord,
    ) -> Result<TaskHandle, RuntimeError> {
        let region = Rect::new(origin, task.width(), task.height());
        self.ensure_region_free(&region, None)?;
        self.controller.load_decoded(task, origin)?;
        Ok(self.register(name, region))
    }

    /// Loads a task wherever it fits (bottom-left first-fit scan).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoFreeRegion`] when the fabric cannot host the
    /// task, plus any fetch/decode/memory error.
    pub fn load(&mut self, name: &str) -> Result<TaskHandle, RuntimeError> {
        let vbs = self.repository.fetch(name)?;
        let origin =
            self.find_free_region(vbs.width(), vbs.height())
                .ok_or(RuntimeError::NoFreeRegion {
                    width: vbs.width(),
                    height: vbs.height(),
                })?;
        self.load_at(name, origin)
    }

    /// Unloads a task and clears its region of the configuration memory.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownHandle`] for stale handles.
    pub fn unload(&mut self, handle: TaskHandle) -> Result<(), RuntimeError> {
        let index = self
            .loaded
            .iter()
            .position(|t| t.handle == handle)
            .ok_or(RuntimeError::UnknownHandle { id: handle.0 })?;
        let task = self.loaded.remove(index);
        self.controller.unload(task.region)?;
        Ok(())
    }

    /// Relocates a loaded task to a new origin — the "fast relocation" use
    /// case of the paper. The task's frames already sit decoded in the
    /// configuration memory, so relocation is one bulk word-arena move
    /// ([`ReconfigurationController::move_region`]): no re-decode, no
    /// staging buffer, and destinations overlapping the task's own current
    /// region (the common small shift during defragmentation) are handled
    /// by the overlap-safe row ordering of the copy itself.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RegionBusy`] if the destination overlaps
    /// another task, [`RuntimeError::UnknownHandle`] for stale handles, plus
    /// any memory error. On error the task stays where it was.
    pub fn relocate(&mut self, handle: TaskHandle, origin: Coord) -> Result<(), RuntimeError> {
        let index = self
            .loaded
            .iter()
            .position(|t| t.handle == handle)
            .ok_or(RuntimeError::UnknownHandle { id: handle.0 })?;
        self.relocate_resident_at(index, origin)
    }

    /// Relocates a loaded task, with `task` (the scheduler's cached decoded
    /// image) validating the resident's shape. Since the configuration
    /// memory already holds exactly that image, the move itself is the same
    /// bulk arena copy as [`TaskManager::relocate`] — the cached stream is
    /// never re-written frame by frame.
    ///
    /// # Errors
    ///
    /// As [`TaskManager::relocate`], plus a memory error when `task` does not
    /// have the shape of the loaded instance.
    pub fn relocate_decoded(
        &mut self,
        handle: TaskHandle,
        task: &TaskBitstream,
        origin: Coord,
    ) -> Result<(), RuntimeError> {
        let index = self
            .loaded
            .iter()
            .position(|t| t.handle == handle)
            .ok_or(RuntimeError::UnknownHandle { id: handle.0 })?;
        let current = self.loaded[index].region;
        if task.width() != current.width || task.height() != current.height {
            return Err(RuntimeError::Memory(BitstreamError::LayoutMismatch));
        }
        self.relocate_resident_at(index, origin)
    }

    fn relocate_resident_at(&mut self, index: usize, origin: Coord) -> Result<(), RuntimeError> {
        let old_region = self.loaded[index].region;
        let new_region = Rect::new(origin, old_region.width, old_region.height);
        if new_region == old_region {
            return Ok(());
        }
        let handle = self.loaded[index].handle;
        self.ensure_region_free(&new_region, Some(handle))?;
        self.controller.move_region(old_region, origin)?;
        self.loaded[index].region = new_region;
        Ok(())
    }

    /// Searches a free `width` × `height` rectangle with the active
    /// placement policy.
    pub fn find_free_region(&self, width: u16, height: u16) -> Option<Coord> {
        self.policy.place(width, height, &self.fabric_view())
    }

    fn ensure_region_free(
        &self,
        region: &Rect,
        ignoring: Option<TaskHandle>,
    ) -> Result<(), RuntimeError> {
        if let Some(busy) = self
            .loaded
            .iter()
            .find(|t| Some(t.handle) != ignoring && t.region.intersects(region))
        {
            return Err(RuntimeError::RegionBusy {
                region: busy.region,
            });
        }
        Ok(())
    }

    fn register(&mut self, name: &str, region: Rect) -> TaskHandle {
        let handle = TaskHandle(self.next_handle);
        self.next_handle += 1;
        self.loaded.push(LoadedTask {
            handle,
            name: name.to_string(),
            region,
        });
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_arch::{ArchSpec, Device};
    use vbs_flow::CadFlow;
    use vbs_netlist::generate::SyntheticSpec;

    fn manager() -> TaskManager {
        let netlist = SyntheticSpec::new("task_a", 18, 4, 4)
            .with_seed(21)
            .build()
            .unwrap();
        let flow = CadFlow::new(9, 6)
            .unwrap()
            .with_grid(6, 6)
            .with_seed(21)
            .fast();
        let result = flow.run(&netlist).unwrap();
        let mut repo = VbsRepository::new();
        repo.store("task_a", &result.vbs(1).unwrap());
        repo.store("task_b", &result.vbs(2).unwrap());
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 16, 8).unwrap();
        TaskManager::new(ReconfigurationController::new(device), repo)
    }

    #[test]
    fn first_fit_loads_tasks_side_by_side() {
        let mut m = manager();
        let a = m.load("task_a").unwrap();
        let b = m.load("task_b").unwrap();
        assert_eq!(m.loaded_tasks().len(), 2);
        let ra = m
            .loaded_tasks()
            .iter()
            .find(|t| t.handle == a)
            .unwrap()
            .region;
        let rb = m
            .loaded_tasks()
            .iter()
            .find(|t| t.handle == b)
            .unwrap()
            .region;
        assert!(!ra.intersects(&rb));
        assert!(m.controller().memory().occupied_macros() > 0);
    }

    #[test]
    fn overlapping_explicit_loads_are_rejected() {
        let mut m = manager();
        m.load_at("task_a", Coord::new(0, 0)).unwrap();
        assert!(matches!(
            m.load_at("task_b", Coord::new(1, 1)),
            Err(RuntimeError::RegionBusy { .. })
        ));
    }

    #[test]
    fn unload_frees_the_region() {
        let mut m = manager();
        let a = m.load("task_a").unwrap();
        assert!(m.controller().memory().occupied_macros() > 0);
        m.unload(a).unwrap();
        assert_eq!(m.controller().memory().occupied_macros(), 0);
        assert!(matches!(
            m.unload(a),
            Err(RuntimeError::UnknownHandle { .. })
        ));
    }

    #[test]
    fn relocation_moves_the_configuration() {
        let mut m = manager();
        let a = m.load_at("task_a", Coord::new(0, 0)).unwrap();
        let before = m
            .controller()
            .memory()
            .read_region(Rect::new(Coord::new(0, 0), 6, 6))
            .unwrap();
        m.relocate(a, Coord::new(9, 2)).unwrap();
        let after = m
            .controller()
            .memory()
            .read_region(Rect::new(Coord::new(9, 2), 6, 6))
            .unwrap();
        assert_eq!(before.diff_count(&after).unwrap(), 0);
        // The old region is blank again.
        let old = m
            .controller()
            .memory()
            .read_region(Rect::new(Coord::new(0, 0), 6, 6))
            .unwrap();
        assert_eq!(old.popcount(), 0);
    }

    #[test]
    fn relocation_onto_own_region_is_not_corrupted() {
        // Regression test: a destination overlapping the task's current
        // region used to decode into the new origin and then clear the
        // overlap away while unloading the old region.
        let mut m = manager();
        let a = m.load_at("task_a", Coord::new(0, 0)).unwrap();
        let region = m.loaded_tasks()[0].region;
        let before = m.controller().memory().read_region(region).unwrap();

        // Shift one macro to the right: maximal self-overlap.
        m.relocate(a, Coord::new(1, 0)).unwrap();
        let shifted = Rect::new(Coord::new(1, 0), region.width, region.height);
        let after = m.controller().memory().read_region(shifted).unwrap();
        assert_eq!(before.diff_count(&after).unwrap(), 0);

        // The vacated column is blank and nothing else is configured.
        let vacated = m
            .controller()
            .memory()
            .read_region(Rect::new(Coord::new(0, 0), 1, region.height))
            .unwrap();
        assert_eq!(vacated.popcount(), 0);
        assert_eq!(
            m.controller().memory().occupied_macros(),
            after.occupied_macros()
        );

        // Diagonal self-overlap keeps working too.
        m.relocate(a, Coord::new(0, 1)).unwrap();
        let diagonal = Rect::new(Coord::new(0, 1), region.width, region.height);
        let moved = m.controller().memory().read_region(diagonal).unwrap();
        assert_eq!(before.diff_count(&moved).unwrap(), 0);
    }

    #[test]
    fn relocation_to_same_origin_is_a_noop() {
        let mut m = manager();
        let a = m.load_at("task_a", Coord::new(2, 1)).unwrap();
        let region = m.loaded_tasks()[0].region;
        let before = m.controller().memory().read_region(region).unwrap();
        m.relocate(a, Coord::new(2, 1)).unwrap();
        let after = m.controller().memory().read_region(region).unwrap();
        assert_eq!(before.diff_count(&after).unwrap(), 0);
    }

    #[test]
    fn streaming_load_at_matches_load_at() {
        let mut buffered = manager();
        buffered.load_at("task_a", Coord::new(2, 1)).unwrap();

        let mut streaming = manager();
        let vbs = streaming.repository().fetch("task_a").unwrap();
        let mut staging = TaskBitstream::empty(*vbs.spec(), 1, 1);
        let (handle, report) = streaming
            .load_streaming_at("task_a", &vbs, &mut staging, Coord::new(2, 1))
            .unwrap();
        assert_eq!(report.records, vbs.records().len());

        let region = streaming.loaded_tasks()[0].region;
        assert_eq!(region, buffered.loaded_tasks()[0].region);
        let a = buffered.controller().memory().read_region(region).unwrap();
        let b = streaming.controller().memory().read_region(region).unwrap();
        assert_eq!(a.diff_count(&b).unwrap(), 0);

        // The streamed instance is a first-class resident: unload clears it.
        streaming.unload(handle).unwrap();
        assert_eq!(streaming.controller().memory().occupied_macros(), 0);

        // Overlap with a resident is rejected before anything is written.
        let (h2, _) = streaming
            .load_streaming_at("task_a", &vbs, &mut staging, Coord::new(0, 0))
            .unwrap();
        assert!(matches!(
            streaming.load_streaming_at("task_a", &vbs, &mut staging, Coord::new(1, 1)),
            Err(RuntimeError::RegionBusy { .. })
        ));
        streaming.unload(h2).unwrap();
    }

    #[test]
    fn fabric_exhaustion_is_reported() {
        let mut m = manager();
        let mut loaded = 0;
        loop {
            match m.load("task_a") {
                Ok(_) => loaded += 1,
                Err(RuntimeError::NoFreeRegion { .. }) => break,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(loaded >= 2, "a 16x8 fabric holds at least two 6x6 tasks");
    }
}
