//! The persistent parallel decode engine of the load path.
//!
//! The paper's Section II-C observation — every VBS record only touches its
//! own cluster's frames — makes record decoding embarrassingly parallel.
//! Earlier revisions exploited that with `std::thread::scope`, spawning
//! fresh OS threads (plus a fresh [`DecodeScratch`] and a fresh partial
//! [`TaskBitstream`] per worker) on **every load**, so the parallel path
//! paid thread-creation and allocator churn per de-virtualization.
//!
//! [`DecodeWorkerPool`] keeps the lanes alive instead: `workers - 1`
//! persistent threads park on a condvar between loads, and every lane
//! (including the dispatching caller, which decodes a share itself) checks
//! its scratch arena and partial image out of a shared [`ScratchPool`].
//! Dispatch is a mutex/condvar epoch bump and completion a counter — no
//! channel nodes, no spawns, no allocation of any kind — so a warm pool
//! decodes in parallel with **zero heap allocations per load**, matching
//! the sequential scratch path's budget.
//!
//! Results are bit-identical to the sequential decode: partial images hold
//! disjoint non-empty frames (one record = one cluster), and merging them
//! into the caller's target is a word-OR sweep per partial under a short
//! lock.
//!
//! # Safety
//!
//! This is the one module of the workspace that uses `unsafe`: the
//! dispatcher lends the workers references to its stack-held job state
//! (devirtualizer, record slice, target image) through lifetime-erased
//! pointers, because persistent threads cannot carry a caller's borrow in
//! the type system. The invariant making this sound is the same one scoped
//! threads enforce structurally: [`DecodeWorkerPool::decode_into`] does not
//! return until every worker has signalled completion of the job, so the
//! pointers never outlive the borrow they were created from. Workers only
//! read the job slot between an epoch bump (which publishes it) and their
//! completion signal (after their last use), and a dispatch mutex
//! serializes concurrent `decode_into` callers so the single job slot and
//! completion counter always describe exactly one in-flight job.

#![allow(unsafe_code)]

use crate::error::RuntimeError;
use crate::pool::ScratchPool;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use vbs_arch::ArchSpec;
use vbs_bitstream::TaskBitstream;
use vbs_core::{ClusterRecord, DecodeScratch, Devirtualizer, Vbs};
use vbs_telemetry::{EventKind, Stage, Telemetry, FLEET_FABRIC};

use crate::controller::DecodeReport;

/// The job slot published to the workers for one parallel decode. All
/// references are lifetime-erased; see the module-level safety contract.
struct Job {
    /// `&Devirtualizer<'_>` of the stream being decoded.
    devirt: *const (),
    /// The stream's record slice.
    records: *const ClusterRecord,
    records_len: usize,
    /// Shape of the decoded task (partials are checked out at this shape).
    spec: ArchSpec,
    width: u16,
    height: u16,
    /// Records per fixed-size chunk; lanes claim chunk indices from `next`.
    chunk_len: usize,
    next: AtomicUsize,
    /// `&mut TaskBitstream` the partials merge into, guarded by `merge`.
    target: *mut TaskBitstream,
    merge: Mutex<()>,
    /// First failure of any lane; once set, lanes stop claiming work.
    failed: AtomicBool,
    error: Mutex<Option<RuntimeError>>,
    /// Observability registry lanes record busy spans and decode events
    /// into (resolved once at dispatch; recording is allocation-free).
    telemetry: Telemetry,
    /// Fabric tag stamped on this job's lane events.
    fabric: u16,
}

// SAFETY: the raw pointers inside a `Job` are only dereferenced by lanes
// between the epoch publication and the completion signal, while the
// dispatcher provably keeps the referents alive (it blocks until the
// completion count reaches zero). Concurrent access is disciplined: the
// devirtualizer and records are only read, and the target is only touched
// under the `merge` mutex.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct State {
    /// Bumped once per published job; workers wake on the change.
    epoch: u64,
    /// The current job, valid while `active > 0` (worker view).
    job: Option<*const Job>,
    /// Worker threads still running the current job.
    active: usize,
    shutdown: bool,
}

// SAFETY: the `*const Job` travels to worker threads only via this state;
// validity is governed by the Job contract above.
unsafe impl Send for State {}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The dispatcher parks here until `active` drains to zero.
    done: Condvar,
    pool: ScratchPool,
    /// Fabric tag for lane telemetry (fleet tag until one is assigned).
    fabric: AtomicU16,
}

/// Record count below which a load decodes sequentially on a multi-lane
/// pool (when the host has more than one hardware thread; single-core
/// hosts always decode sequentially). Fanning a load out costs a condvar
/// broadcast, per-lane partial checkouts and a merge sweep per lane —
/// with the indexed-adjacency decoder a coded record costs only a few
/// microseconds, so streams under a couple hundred records finish faster
/// on the dispatcher's lane alone (re-measured against the bench's 11x11
/// corpus after the dense-scratch decoder rework).
pub const DEFAULT_SEQUENTIAL_THRESHOLD: usize = 192;

/// The pool's initial sequential threshold: the default record-count
/// cutoff, or "always sequential" when the host cannot actually run lanes
/// concurrently (fan-out is pure dispatch overhead there).
fn default_threshold() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => DEFAULT_SEQUENTIAL_THRESHOLD,
        _ => usize::MAX,
    }
}

/// A persistent pool of de-virtualization lanes sharing one
/// [`ScratchPool`] (see the module docs). `workers == 1` keeps no threads
/// at all: decodes run sequentially on a pooled scratch.
///
/// Multi-lane pools are *adaptive*: a load whose record count falls below
/// the sequential threshold (see
/// [`DecodeWorkerPool::set_sequential_threshold`]) skips the fan-out and
/// decodes on the dispatcher's lane, because waking lanes for a handful of
/// records costs more than the records themselves.
pub struct DecodeWorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
    /// Record count below which loads stay sequential.
    sequential_threshold: AtomicUsize,
    /// Serializes dispatchers: the job slot holds exactly one job, and the
    /// safety contract (the published pointers outlive the job) requires
    /// that no second caller republish the slot while lanes are mid-job.
    dispatch: Mutex<()>,
}

impl fmt::Debug for DecodeWorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeWorkerPool")
            .field("workers", &self.workers)
            .field("pool", &self.shared.pool.stats())
            .finish()
    }
}

impl DecodeWorkerPool {
    /// Creates a pool with `workers` decode lanes (at least 1; the caller's
    /// thread is lane 0, so `workers - 1` threads are spawned) and a fresh
    /// [`ScratchPool`].
    pub fn new(workers: usize) -> Self {
        DecodeWorkerPool::with_pool(workers, ScratchPool::default())
    }

    /// As [`DecodeWorkerPool::new`], with an explicit (typically fleet- or
    /// fabric-shared) scratch pool.
    pub fn with_pool(workers: usize, pool: ScratchPool) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            pool,
            fabric: AtomicU16::new(FLEET_FABRIC),
        });
        let threads = (1..workers)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, lane as u16))
            })
            .collect();
        DecodeWorkerPool {
            shared,
            threads,
            workers,
            sequential_threshold: AtomicUsize::new(default_threshold()),
            dispatch: Mutex::new(()),
        }
    }

    /// Sets the record count below which a load decodes sequentially even
    /// on a multi-lane pool. `2` restores unconditional fan-out (every
    /// stream with at least two records is split); `usize::MAX` forces
    /// every load sequential.
    pub fn set_sequential_threshold(&self, records: usize) {
        self.sequential_threshold
            .store(records.max(2), Ordering::Relaxed);
    }

    /// The current sequential-fallback threshold.
    pub fn sequential_threshold(&self) -> usize {
        self.sequential_threshold.load(Ordering::Relaxed)
    }

    /// The number of decode lanes (1 = sequential, no threads).
    pub const fn workers(&self) -> usize {
        self.workers
    }

    /// The shared scratch pool (a handle).
    pub fn pool(&self) -> &ScratchPool {
        &self.shared.pool
    }

    /// Tags this pool's lane telemetry with the owning fabric (events carry
    /// the fleet tag until one is assigned). The registry itself lives on
    /// the [`ScratchPool`] — see [`ScratchPool::set_telemetry`].
    pub fn set_fabric(&self, fabric: u16) {
        self.shared.fabric.store(fabric, Ordering::Relaxed);
    }

    /// The fabric tag stamped on lane events.
    pub fn fabric(&self) -> u16 {
        self.shared.fabric.load(Ordering::Relaxed)
    }

    /// Pre-warms one scratch and one partial buffer per lane for `vbs`, so
    /// subsequent decodes allocate nothing no matter how the lanes
    /// interleave (see [`ScratchPool::warm_scratches`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when the stream header is
    /// degenerate.
    pub fn warm(&self, vbs: &Vbs) -> Result<(), RuntimeError> {
        self.shared
            .pool
            .warm_scratches(vbs, self.workers)
            .map_err(RuntimeError::Decode)
    }

    /// De-virtualizes `vbs` into `task` (reshaped in place), fanning the
    /// record list out over every lane. With a warm pool this performs zero
    /// heap allocations. Results are bit-identical to
    /// [`Devirtualizer::decode_into`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Decode`] when any record fails to expand;
    /// `task` then holds a partially merged image and should be discarded
    /// (or recycled — pooled checkouts reset it anyway).
    pub fn decode_into(
        &self,
        vbs: &Vbs,
        task: &mut TaskBitstream,
    ) -> Result<DecodeReport, RuntimeError> {
        let telemetry = self.shared.pool.telemetry();
        let fabric = self.fabric();
        let start = telemetry.now();
        let devirtualizer = Devirtualizer::new(vbs).map_err(RuntimeError::Decode)?;
        let records = vbs.records();
        let (width, height) = (vbs.width().max(1), vbs.height().max(1));

        let threshold = self.sequential_threshold.load(Ordering::Relaxed);
        if self.threads.is_empty() || records.len() < threshold {
            // Sequential: decode straight into the target on one pooled
            // scratch (decode_into reshapes the target itself).
            telemetry.event(EventKind::DecodeStart, fabric, 0, 0, 0);
            let mut scratch = self.shared.pool.checkout_scratch();
            let result = devirtualizer.decode_into(task, &mut scratch);
            self.shared.pool.put_scratch(scratch);
            telemetry.record_span(Stage::LaneBusy, start);
            telemetry.event_span(
                EventKind::DecodeEnd,
                fabric,
                0,
                records.len() as u64,
                0,
                start,
            );
            result.map_err(RuntimeError::Decode)?;
        } else {
            // One dispatcher at a time: the job slot and completion counter
            // belong to exactly one in-flight job (see the safety contract).
            let _dispatch = lock_unpoisoned(&self.dispatch);
            task.reset(*vbs.spec(), width, height);
            // Size chunks so every participating lane gets a worthwhile
            // share (half the sequential threshold): a load just past the
            // cutoff fans out to two lanes, not to every lane with a
            // two-record crumb each.
            let min_share = (threshold / 2).max(1);
            let lanes = self
                .workers
                .min(records.len() / min_share)
                .clamp(2, self.workers);
            let job = Job {
                devirt: (&devirtualizer as *const Devirtualizer<'_>).cast(),
                records: records.as_ptr(),
                records_len: records.len(),
                spec: *vbs.spec(),
                width,
                height,
                chunk_len: records.len().div_ceil(lanes),
                next: AtomicUsize::new(0),
                target: task as *mut TaskBitstream,
                merge: Mutex::new(()),
                failed: AtomicBool::new(false),
                error: Mutex::new(None),
                telemetry: telemetry.clone(),
                fabric,
            };
            {
                let mut state = lock_unpoisoned(&self.shared.state);
                state.job = Some(&job as *const Job);
                state.active = self.threads.len();
                state.epoch += 1;
                self.shared.work.notify_all();
            }
            // Lane 0 is the dispatcher itself. A panic here must not
            // propagate before the completion wait below — the published
            // job pointers would dangle — so it is caught and converted
            // into the job's failure slot like any worker-lane panic.
            let lane0 = catch_unwind(AssertUnwindSafe(|| run_lane(&job, &self.shared.pool, 0)));
            {
                let mut state = lock_unpoisoned(&self.shared.state);
                while state.active > 0 {
                    state = self
                        .shared
                        .done
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                state.job = None;
            }
            if let Err(payload) = lane0 {
                fail(&job, lane_panic_error(0, payload.as_ref()));
            }
            let failure = lock_unpoisoned(&job.error).take();
            if let Some(error) = failure {
                return Err(error);
            }
        }

        Ok(DecodeReport {
            records: records.len(),
            workers: self.workers,
            micros: telemetry.now().saturating_sub(start),
            raw_bits: task.size_bits(),
        })
    }
}

impl Drop for DecodeWorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Locks a mutex, recovering the data even when a panicking lane poisoned
/// it — a single bad decode must not take the pool down for later loads.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Converts a caught lane panic payload into the typed error reported to
/// the interrupted load.
fn lane_panic_error(lane: usize, payload: &(dyn std::any::Any + Send)) -> RuntimeError {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    RuntimeError::LanePanic { lane, message }
}

/// One worker thread: park on the condvar, run every published job once,
/// signal completion, repeat until shutdown. A panic inside the lane is
/// caught here: the completion signal must fire regardless (the dispatcher
/// is blocked on it), and the panic surfaces as the job's
/// [`RuntimeError::LanePanic`] instead of tearing the thread down.
fn worker_loop(shared: &Shared, lane: u16) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = lock_unpoisoned(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    if let Some(job) = state.job {
                        seen = state.epoch;
                        break job;
                    }
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatcher keeps the job (and everything it points
        // at) alive until `active` reaches zero, which this thread only
        // signals below, after its last use of `job`.
        let job = unsafe { &*job };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_lane(job, &shared.pool, lane))) {
            fail(job, lane_panic_error(lane as usize, payload.as_ref()));
        }
        let mut state = lock_unpoisoned(&shared.state);
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// One lane's share of a job: claim record chunks, decode them into a
/// pooled partial image on a pooled scratch, then word-OR the partial into
/// the target under the merge lock.
fn run_lane(job: &Job, pool: &ScratchPool, lane_index: u16) {
    #[cfg(test)]
    tests::maybe_inject_panic();
    // SAFETY: see the Job contract — the record slice outlives the job.
    let records = unsafe { std::slice::from_raw_parts(job.records, job.records_len) };
    // SAFETY: ditto; the cast reverses the lifetime erasure of dispatch.
    let devirt = unsafe { &*job.devirt.cast::<Devirtualizer<'_>>() };

    let mut lane: Option<(DecodeScratch, TaskBitstream)> = None;
    let mut busy_from = 0u64;
    let mut decoded = 0u64;
    while !job.failed.load(Ordering::Relaxed) {
        let chunk = job.next.fetch_add(1, Ordering::Relaxed);
        let begin = chunk * job.chunk_len;
        if begin >= records.len() {
            break;
        }
        let end = (begin + job.chunk_len).min(records.len());
        let (scratch, partial) = lane.get_or_insert_with(|| {
            // First claimed chunk: the lane goes busy (lanes that never
            // claim work stay silent on the timeline).
            busy_from = job.telemetry.now();
            job.telemetry.event(
                EventKind::DecodeStart,
                job.fabric,
                lane_index,
                lane_index as u64,
                0,
            );
            (
                pool.checkout_scratch(),
                pool.checkout(job.spec, job.width, job.height),
            )
        });
        for record in &records[begin..end] {
            if job.failed.load(Ordering::Relaxed) {
                break;
            }
            if let Err(e) = devirt.decode_record_with(record, partial, scratch) {
                fail(job, RuntimeError::Decode(e));
                break;
            }
            decoded += 1;
        }
    }

    if let Some((scratch, partial)) = lane {
        if !job.failed.load(Ordering::Relaxed) {
            let _guard = lock_unpoisoned(&job.merge);
            // SAFETY: the target is only touched under the merge lock and
            // outlives the job (dispatcher's &mut borrow).
            let target = unsafe { &mut *job.target };
            if let Err(e) = target.merge_disjoint(&partial) {
                fail(job, RuntimeError::Memory(e));
            }
        }
        pool.put(partial);
        pool.put_scratch(scratch);
        job.telemetry.record_span(Stage::LaneBusy, busy_from);
        job.telemetry.event_span(
            EventKind::DecodeEnd,
            job.fabric,
            lane_index,
            decoded,
            0,
            busy_from,
        );
    }
}

/// Records the first failure and stops the other lanes claiming work.
fn fail(job: &Job, error: RuntimeError) {
    let mut slot = lock_unpoisoned(&job.error);
    if slot.is_none() {
        *slot = Some(error);
    }
    job.failed.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vbs_flow::CadFlow;
    use vbs_netlist::generate::SyntheticSpec;

    /// Arms a one-shot panic in the next lane that starts a job — the
    /// injection seam for the containment test below.
    static INJECT_LANE_PANIC: AtomicBool = AtomicBool::new(false);

    pub(super) fn maybe_inject_panic() {
        if INJECT_LANE_PANIC.swap(false, Ordering::SeqCst) {
            panic!("injected lane panic");
        }
    }

    fn fixture() -> (Vbs, TaskBitstream) {
        let netlist = SyntheticSpec::new("pp", 24, 4, 4)
            .with_seed(33)
            .build()
            .unwrap();
        let flow = CadFlow::new(9, 6)
            .unwrap()
            .with_grid(6, 6)
            .with_seed(33)
            .fast();
        let result = flow.run(&netlist).unwrap();
        (result.vbs(1).unwrap(), result.raw_bitstream().clone())
    }

    #[test]
    fn parallel_lanes_match_the_sequential_decode() {
        let (vbs, raw) = fixture();
        for workers in [1usize, 2, 4] {
            let pool = DecodeWorkerPool::new(workers);
            // Pin the fan-out path regardless of host parallelism — this is
            // the parallel-vs-sequential bit-identity differential.
            pool.set_sequential_threshold(2);
            let mut task = TaskBitstream::empty(*vbs.spec(), 1, 1);
            let report = pool.decode_into(&vbs, &mut task).unwrap();
            assert_eq!(report.workers, workers);
            assert_eq!(report.records, vbs.records().len());
            assert_eq!(task.diff_count(&raw).unwrap(), 0, "workers={workers}");
            // A second decode on the warm pool is still identical.
            pool.decode_into(&vbs, &mut task).unwrap();
            assert_eq!(task.diff_count(&raw).unwrap(), 0);
        }
    }

    #[test]
    fn lanes_recycle_scratches_and_partials_through_the_pool() {
        let (vbs, _) = fixture();
        let pool = DecodeWorkerPool::new(3);
        pool.set_sequential_threshold(2);
        pool.warm(&vbs).unwrap();
        let warmed = pool.pool().stats();
        assert_eq!(warmed.scratch_fresh, 3);
        assert_eq!(warmed.scratch_parked, 3);
        let mut task = TaskBitstream::empty(*vbs.spec(), 1, 1);
        for _ in 0..5 {
            pool.decode_into(&vbs, &mut task).unwrap();
        }
        let stats = pool.pool().stats();
        assert_eq!(
            stats.scratch_fresh, 3,
            "no lane may allocate a scratch after warm-up: {stats:?}"
        );
        assert_eq!(stats.fresh, 4, "partial buffers must recycle: {stats:?}");
    }

    #[test]
    fn small_loads_fall_back_to_one_sequential_lane() {
        let (vbs, raw) = fixture();
        let pool = DecodeWorkerPool::new(4);
        // Record count below the threshold: the load must stay on the
        // dispatcher's lane — no partial images are ever checked out.
        pool.set_sequential_threshold(vbs.records().len() + 1);
        let mut task = TaskBitstream::empty(*vbs.spec(), 1, 1);
        let report = pool.decode_into(&vbs, &mut task).unwrap();
        assert_eq!(report.records, vbs.records().len());
        assert_eq!(task.diff_count(&raw).unwrap(), 0);
        assert_eq!(
            pool.pool().stats().fresh,
            0,
            "a sequential fallback must not touch partial buffers"
        );
        // Lowering the threshold fans the very same stream out, with
        // bit-identical results.
        pool.set_sequential_threshold(2);
        pool.decode_into(&vbs, &mut task).unwrap();
        assert_eq!(task.diff_count(&raw).unwrap(), 0);
        assert!(
            pool.pool().stats().fresh > 0,
            "the fan-out path merges through pooled partials"
        );
    }

    #[test]
    fn concurrent_dispatchers_serialize_on_one_pool() {
        // Two threads share one pool and decode simultaneously: the
        // dispatch mutex must serialize the job slot so both get complete,
        // bit-identical results.
        let (vbs, raw) = fixture();
        let pool = DecodeWorkerPool::new(3);
        pool.set_sequential_threshold(2);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let pool = &pool;
                let vbs = &vbs;
                let raw = &raw;
                scope.spawn(move || {
                    let mut task = TaskBitstream::empty(*vbs.spec(), 1, 1);
                    for _ in 0..8 {
                        pool.decode_into(vbs, &mut task).unwrap();
                        assert_eq!(task.diff_count(raw).unwrap(), 0);
                    }
                });
            }
        });
    }

    #[test]
    fn a_corrupt_stream_reports_the_decode_error() {
        let (vbs, _) = fixture();
        // Rebuild the stream with one record pointing at an out-of-range
        // boundary wire so decoding fails deterministically.
        let mut records = vbs.records().to_vec();
        let corrupted = records
            .iter_mut()
            .find_map(|r| match &mut r.routes {
                vbs_core::ClusterRoutes::Coded(routes) => routes.first_mut(),
                vbs_core::ClusterRoutes::Raw(_) => None,
            })
            .expect("the fixture stream has a coded record");
        corrupted.output = vbs_core::ClusterIo::Boundary {
            side: vbs_arch::Side::West,
            offset: u16::MAX,
        };
        let bad = Vbs::new(
            *vbs.spec(),
            vbs.cluster_size(),
            vbs.width(),
            vbs.height(),
            records,
        )
        .expect("positions are untouched, so construction succeeds");
        let pool = DecodeWorkerPool::new(4);
        pool.set_sequential_threshold(2);
        let mut task = TaskBitstream::empty(*vbs.spec(), 1, 1);
        assert!(pool.decode_into(&bad, &mut task).is_err());
        // The pool survives the failure and decodes good streams again.
        pool.decode_into(&vbs, &mut task).unwrap();
    }

    #[test]
    fn a_panicking_lane_is_contained_and_reported() {
        let (vbs, raw) = fixture();
        let pool = DecodeWorkerPool::new(4);
        // The injection seam lives in `run_lane`, so the fan-out path must
        // actually run.
        pool.set_sequential_threshold(2);
        let mut task = TaskBitstream::empty(*vbs.spec(), 1, 1);
        pool.decode_into(&vbs, &mut task).unwrap();

        // Silence the default panic hook around the injected panic so the
        // test log stays readable; the panic itself is caught by the pool.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        INJECT_LANE_PANIC.store(true, Ordering::SeqCst);
        let err = pool.decode_into(&vbs, &mut task).unwrap_err();
        std::panic::set_hook(hook);
        assert!(matches!(err, RuntimeError::LanePanic { .. }), "{err:?}");
        assert!(err.to_string().contains("injected lane panic"));

        // The interrupted load failed, but the pool is not poisoned: the
        // same lanes keep decoding later loads bit-perfectly.
        for _ in 0..3 {
            pool.decode_into(&vbs, &mut task).unwrap();
            assert_eq!(task.diff_count(&raw).unwrap(), 0);
        }
    }
}
