//! Golden parse results for checked-in MCNC corpus circuits: exact block
//! censuses for two `.blif` files of `tests/traces/mcnc/` (workspace
//! root). A parser change that alters how covers, latches or pads
//! materialize shows up here as an explicit count diff; regenerate the
//! corpus (`cargo run --release -p vbs-bench --bin mcnc_corpus`) if the
//! change is intended.

use vbs_netlist::{blif, BlockKind, Netlist};

fn parse_corpus_circuit(name: &str) -> Netlist {
    let path = format!(
        "{}/../../tests/traces/mcnc/{name}.blif",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    blif::parse(&text, 6).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn registered_count(netlist: &Netlist) -> usize {
    netlist
        .iter_blocks()
        .filter(|(_, b)| {
            matches!(
                b.kind,
                BlockKind::Lut {
                    registered: true,
                    ..
                }
            )
        })
        .count()
}

#[test]
fn alu4_parse_census_is_golden() {
    let n = parse_corpus_circuit("alu4");
    assert_eq!(n.name(), "alu4");
    assert_eq!(n.lut_count(), 47);
    assert_eq!(n.input_count(), 1);
    assert_eq!(n.output_count(), 1);
    // Every `.latch` folded into a registered LUT (their `__d` nets have
    // fanout 1 by construction).
    assert_eq!(registered_count(&n), 3);
    assert!(n.validate().is_ok());
}

#[test]
fn tseng_parse_census_is_golden() {
    let n = parse_corpus_circuit("tseng");
    assert_eq!(n.name(), "tseng");
    assert_eq!(n.lut_count(), 36);
    assert_eq!(n.input_count(), 1);
    assert_eq!(n.output_count(), 1);
    assert_eq!(registered_count(&n), 3);
    assert!(n.validate().is_ok());
}

#[test]
fn corpus_circuits_reach_the_write_fixpoint() {
    for name in ["alu4", "tseng"] {
        let n = parse_corpus_circuit(name);
        let t = blif::write(&n);
        let n2 = blif::parse(&t, 6).expect("reparse");
        assert_eq!(blif::write(&n2), t, "{name} must be write-stable");
    }
}
