//! `write → parse → write` fixpoint property for the BLIF subset.
//!
//! The first trip may normalize the text (latch folding renames the
//! intermediate `<net>__d` signal away, shared-driver output pads become
//! buffer covers), but from then on the representation must be *stable*:
//! the second and third serializations are byte-identical, and every trip
//! preserves the block census. This pins down the writer/parser pair as a
//! bijection on its own image — the property the checked-in MCNC corpus
//! relies on.

use proptest::prelude::*;
use vbs_netlist::{blif, generate::SyntheticSpec};

proptest! {
    #[test]
    fn write_parse_write_is_a_fixpoint(
        luts in 8usize..48,
        inputs in 2usize..10,
        outputs in 1usize..8,
        seed in 0u64..1_000_000,
        registered_pct in 0u64..60,
    ) {
        let netlist = SyntheticSpec::new("fix", luts, inputs, outputs)
            .with_seed(seed)
            .with_registered_fraction(registered_pct as f64 / 100.0)
            .build()
            .expect("synthetic circuit");
        let t1 = blif::write(&netlist);
        let n1 = blif::parse(&t1, netlist.lut_size()).expect("first reparse");
        let t2 = blif::write(&n1);
        let n2 = blif::parse(&t2, netlist.lut_size()).expect("second reparse");
        let t3 = blif::write(&n2);
        prop_assert_eq!(&t2, &t3, "second trip must be byte-identical");
        prop_assert_eq!(n1.lut_count(), netlist.lut_count());
        prop_assert_eq!(n2.lut_count(), netlist.lut_count());
        prop_assert_eq!(n2.input_count(), netlist.input_count());
        prop_assert_eq!(n2.output_count(), netlist.output_count());
    }
}

#[test]
fn fixpoint_holds_for_registered_heavy_circuits() {
    // A directed check at the latch-heavy corner: every LUT registered.
    let netlist = SyntheticSpec::new("regheavy", 30, 5, 4)
        .with_seed(7)
        .with_registered_fraction(1.0)
        .build()
        .expect("synthetic circuit");
    let t1 = blif::write(&netlist);
    let n1 = blif::parse(&t1, 6).expect("first reparse");
    let t2 = blif::write(&n1);
    let n2 = blif::parse(&t2, 6).expect("second reparse");
    assert_eq!(t2, blif::write(&n2));
    assert_eq!(n2.lut_count(), netlist.lut_count());
}
