//! LUT truth tables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The truth table of a `K`-input LUT, stored LSB-first: bit `i` is the output
/// for the input combination whose binary encoding is `i`.
///
/// ```
/// use vbs_netlist::TruthTable;
/// // A 2-input XOR gate.
/// let xor = TruthTable::from_fn(2, |i| (i.count_ones() % 2) == 1);
/// assert!(!xor.evaluate(&[false, false]));
/// assert!(xor.evaluate(&[true, false]));
/// assert!(xor.evaluate(&[false, true]));
/// assert!(!xor.evaluate(&[true, true]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    inputs: u8,
    words: Vec<u64>,
}

impl TruthTable {
    /// Creates an all-zero truth table for a LUT with `inputs` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs > 16` (the model only targets small LUTs).
    pub fn zeros(inputs: u8) -> Self {
        assert!(inputs <= 16, "LUT size {inputs} unsupported");
        let bits = 1usize << inputs;
        TruthTable {
            inputs,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Builds a truth table by evaluating `f` on every input combination.
    pub fn from_fn(inputs: u8, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut table = TruthTable::zeros(inputs);
        for i in 0..(1usize << inputs) {
            if f(i) {
                table.set(i, true);
            }
        }
        table
    }

    /// Builds a truth table from raw bits, LSB-first; missing bits are zero.
    pub fn from_bits(inputs: u8, bits: impl IntoIterator<Item = bool>) -> Self {
        let mut table = TruthTable::zeros(inputs);
        for (i, b) in bits.into_iter().take(1 << inputs).enumerate() {
            table.set(i, b);
        }
        table
    }

    /// Number of LUT inputs.
    pub const fn inputs(&self) -> u8 {
        self.inputs
    }

    /// Number of truth-table entries (`2^inputs`).
    pub const fn len(&self) -> usize {
        1usize << self.inputs
    }

    /// Whether the truth table is the constant-zero function.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Reads entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^inputs`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len());
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets entry `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^inputs`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len());
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Evaluates the LUT for the given input values (input 0 is the LSB of the
    /// entry index). Missing inputs are treated as `false`.
    pub fn evaluate(&self, values: &[bool]) -> bool {
        let mut index = 0usize;
        for (i, &v) in values.iter().enumerate().take(self.inputs as usize) {
            if v {
                index |= 1 << i;
            }
        }
        self.get(index)
    }

    /// Iterates over the entries, LSB-first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Re-expresses this truth table for a LUT with `new_inputs >= inputs`
    /// physical inputs; the extra inputs are don't-care.
    ///
    /// # Panics
    ///
    /// Panics if `new_inputs < self.inputs()` or `new_inputs > 16`.
    pub fn widen(&self, new_inputs: u8) -> TruthTable {
        assert!(new_inputs >= self.inputs);
        let mask = self.len() - 1;
        TruthTable::from_fn(new_inputs, |i| self.get(i & mask))
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lut{}(", self.inputs)?;
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_empty() {
        let t = TruthTable::zeros(6);
        assert_eq!(t.len(), 64);
        assert!(t.is_empty());
        assert!(!t.get(17));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = TruthTable::zeros(6);
        t.set(0, true);
        t.set(63, true);
        assert!(t.get(0));
        assert!(t.get(63));
        assert!(!t.get(1));
        t.set(63, false);
        assert!(!t.get(63));
    }

    #[test]
    fn evaluate_matches_entry_encoding() {
        let t = TruthTable::from_fn(3, |i| i == 0b101);
        assert!(t.evaluate(&[true, false, true]));
        assert!(!t.evaluate(&[true, true, true]));
        // Missing inputs default to false.
        assert!(!t.evaluate(&[true]));
    }

    #[test]
    fn widen_preserves_function_on_original_inputs() {
        let xor = TruthTable::from_fn(2, |i| (i.count_ones() % 2) == 1);
        let wide = xor.widen(6);
        assert_eq!(wide.inputs(), 6);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(
                    wide.evaluate(&[a, b, false, false, false, false]),
                    xor.evaluate(&[a, b])
                );
                // Don't-care inputs do not change the function.
                assert_eq!(
                    wide.evaluate(&[a, b, true, true, false, true]),
                    xor.evaluate(&[a, b])
                );
            }
        }
    }

    #[test]
    fn large_table_uses_multiple_words() {
        let t = TruthTable::from_fn(8, |i| i % 3 == 0);
        assert_eq!(t.len(), 256);
        assert!(t.get(0));
        assert!(t.get(255));
        assert!(!t.get(100));
    }

    #[test]
    fn display_shows_bits() {
        let t = TruthTable::from_fn(2, |i| i == 3);
        assert_eq!(t.to_string(), "lut2(0001)");
    }
}
