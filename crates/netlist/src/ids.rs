//! Dense identifiers for blocks and nets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a block (LUT, input pad or output pad) within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the dense index of this block.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of a net (signal) within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// Returns the dense index of this net.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(BlockId(3).to_string(), "b3");
        assert_eq!(NetId(7).to_string(), "n7");
        assert_eq!(BlockId(3).index(), 3);
        assert_eq!(NetId(7).index(), 7);
    }
}
