//! Deterministic synthetic circuit generation.
//!
//! The generator produces LUT-mapped circuits with tunable size, I/O count,
//! fan-in distribution and wiring locality. It is used to instantiate the
//! MCNC benchmark set of Table II as synthetic equivalents (see
//! [`crate::mcnc`]) and to build small circuits for tests and examples.
//!
//! The construction is a layered random DAG:
//!
//! 1. primary inputs are created first;
//! 2. LUTs are created in topological order; each LUT picks a fan-in between
//!    2 and `K` (biased towards [`SyntheticSpec::with_mean_fanin`]) and draws
//!    its source nets either from a sliding *locality window* of recently
//!    created nets (with probability `locality`) or uniformly from all
//!    existing nets — this controls routing density, which is what the VBS
//!    compression ratio is sensitive to;
//! 3. primary outputs consume distinct, preferably late, nets.

use crate::error::NetlistError;
use crate::ids::NetId;
use crate::lut::TruthTable;
use crate::model::Netlist;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builder describing the synthetic circuit to generate.
///
/// ```
/// use vbs_netlist::generate::SyntheticSpec;
/// # fn main() -> Result<(), vbs_netlist::NetlistError> {
/// let netlist = SyntheticSpec::new("example", 120, 10, 10)
///     .with_seed(42)
///     .with_locality(0.8)
///     .build()?;
/// assert_eq!(netlist.lut_count(), 120);
/// assert_eq!(netlist.input_count(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    name: String,
    luts: usize,
    inputs: usize,
    outputs: usize,
    lut_size: u8,
    seed: u64,
    mean_fanin: f64,
    registered_fraction: f64,
    locality: f64,
    window: usize,
}

impl SyntheticSpec {
    /// Creates a specification for a circuit with `luts` LUTs, `inputs`
    /// primary inputs and `outputs` primary outputs, mapped to 6-LUTs.
    pub fn new(name: impl Into<String>, luts: usize, inputs: usize, outputs: usize) -> Self {
        SyntheticSpec {
            name: name.into(),
            luts,
            inputs,
            outputs,
            lut_size: 6,
            seed: 1,
            mean_fanin: 3.6,
            registered_fraction: 0.12,
            locality: 0.82,
            window: 64,
        }
    }

    /// Sets the LUT size (`K`), default 6.
    pub fn with_lut_size(mut self, lut_size: u8) -> Self {
        self.lut_size = lut_size;
        self
    }

    /// Sets the RNG seed; generation is fully deterministic for a given spec.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mean LUT fan-in (clamped to `2.0..=K`), default 3.6.
    pub fn with_mean_fanin(mut self, mean: f64) -> Self {
        self.mean_fanin = mean;
        self
    }

    /// Sets the fraction of registered LUTs, default 0.12.
    pub fn with_registered_fraction(mut self, fraction: f64) -> Self {
        self.registered_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability of drawing a source from the locality window
    /// instead of uniformly, default 0.82. Lower locality produces more
    /// global wiring and hence denser routing.
    pub fn with_locality(mut self, locality: f64) -> Self {
        self.locality = locality.clamp(0.0, 1.0);
        self
    }

    /// Sets the size of the locality window (in recently created nets),
    /// default 64.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Number of LUTs that will be generated.
    pub fn lut_target(&self) -> usize {
        self.luts
    }

    /// Generates the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidGeneratorSpec`] when the parameters are
    /// inconsistent (no inputs, no LUTs, outputs exceeding available nets, or
    /// an unsupported LUT size).
    pub fn build(&self) -> Result<Netlist, NetlistError> {
        if self.inputs == 0 {
            return Err(NetlistError::InvalidGeneratorSpec {
                reason: "a circuit needs at least one primary input".into(),
            });
        }
        if self.luts == 0 {
            return Err(NetlistError::InvalidGeneratorSpec {
                reason: "a circuit needs at least one LUT".into(),
            });
        }
        if !(2..=8).contains(&self.lut_size) {
            return Err(NetlistError::InvalidGeneratorSpec {
                reason: format!("unsupported LUT size {}", self.lut_size),
            });
        }
        if self.outputs == 0 {
            return Err(NetlistError::InvalidGeneratorSpec {
                reason: "a circuit needs at least one primary output".into(),
            });
        }
        if self.outputs > self.luts + self.inputs {
            return Err(NetlistError::InvalidGeneratorSpec {
                reason: format!(
                    "{} outputs requested but only {} nets will exist",
                    self.outputs,
                    self.luts + self.inputs
                ),
            });
        }

        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5eed_cafe_f00d_u64);
        let mut netlist = Netlist::new(self.name.clone(), self.lut_size);
        let mut nets: Vec<NetId> = Vec::with_capacity(self.inputs + self.luts);

        for i in 0..self.inputs {
            let (_, net) = netlist.add_input(format!("pi_{i}"));
            nets.push(net);
        }

        let k = self.lut_size as usize;
        let mean = self.mean_fanin.clamp(2.0, k as f64);
        for i in 0..self.luts {
            let fanin = sample_fanin(&mut rng, mean, k);
            let mut sources: Vec<NetId> = Vec::with_capacity(fanin);
            let mut guard = 0;
            while sources.len() < fanin && guard < 64 {
                guard += 1;
                let candidate = if rng.gen_bool(self.locality) && nets.len() > self.window {
                    let start = nets.len() - self.window;
                    nets[rng.gen_range(start..nets.len())]
                } else {
                    nets[rng.gen_range(0..nets.len())]
                };
                if !sources.contains(&candidate) {
                    sources.push(candidate);
                }
            }
            let truth = random_truth(&mut rng, self.lut_size);
            let registered = rng.gen_bool(self.registered_fraction);
            let (_, net) = netlist.add_lut(format!("lut_{i}"), truth, &sources, registered);
            nets.push(net);
        }

        // Outputs prefer late nets (the "result" end of the DAG) but stay
        // distinct.
        let mut chosen: Vec<NetId> = Vec::with_capacity(self.outputs);
        let mut cursor = nets.len();
        while chosen.len() < self.outputs && cursor > 0 {
            cursor -= 1;
            let needed = self.outputs - chosen.len();
            let unvisited = cursor + 1;
            // Walk backwards from the most recent nets, skipping roughly half
            // of them, but never skip once the remaining pool is exhausted.
            if unvisited <= needed || rng.gen_bool(0.55) {
                chosen.push(nets[cursor]);
            }
        }
        for (i, net) in chosen.into_iter().enumerate() {
            netlist.add_output(format!("po_{i}"), net);
        }

        debug_assert!(netlist.validate().is_ok());
        Ok(netlist)
    }
}

/// Samples a LUT fan-in in `2..=k` with the requested mean.
fn sample_fanin(rng: &mut SmallRng, mean: f64, k: usize) -> usize {
    // Binomial-ish sampling: k - 2 coin flips biased so the expectation hits
    // `mean`.
    let p = ((mean - 2.0) / (k as f64 - 2.0)).clamp(0.0, 1.0);
    let mut fanin = 2usize;
    for _ in 0..(k - 2) {
        if rng.gen_bool(p) {
            fanin += 1;
        }
    }
    fanin
}

/// Draws a random, non-constant truth table.
fn random_truth(rng: &mut SmallRng, lut_size: u8) -> TruthTable {
    loop {
        let table = TruthTable::from_fn(lut_size, |_| rng.gen_bool(0.5));
        let ones = table.iter().filter(|&b| b).count();
        if ones != 0 && ones != table.len() {
            return table;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticSpec::new("d", 100, 12, 9)
            .with_seed(3)
            .build()
            .unwrap();
        let b = SyntheticSpec::new("d", 100, 12, 9)
            .with_seed(3)
            .build()
            .unwrap();
        assert_eq!(a.connectivity_signature(), b.connectivity_signature());
    }

    #[test]
    fn different_seeds_give_different_circuits() {
        let a = SyntheticSpec::new("d", 100, 12, 9)
            .with_seed(3)
            .build()
            .unwrap();
        let b = SyntheticSpec::new("d", 100, 12, 9)
            .with_seed(4)
            .build()
            .unwrap();
        assert_ne!(a.connectivity_signature(), b.connectivity_signature());
    }

    #[test]
    fn counts_match_the_spec() {
        let n = SyntheticSpec::new("c", 75, 9, 14)
            .with_seed(1)
            .build()
            .unwrap();
        assert_eq!(n.lut_count(), 75);
        assert_eq!(n.input_count(), 9);
        assert_eq!(n.output_count(), 14);
        n.validate().expect("generated netlists are valid");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(SyntheticSpec::new("x", 0, 4, 4).build().is_err());
        assert!(SyntheticSpec::new("x", 10, 0, 4).build().is_err());
        assert!(SyntheticSpec::new("x", 10, 4, 0).build().is_err());
        assert!(SyntheticSpec::new("x", 2, 2, 100).build().is_err());
        assert!(SyntheticSpec::new("x", 10, 4, 4)
            .with_lut_size(12)
            .build()
            .is_err());
    }

    #[test]
    fn lut_fanin_never_exceeds_lut_size() {
        let n = SyntheticSpec::new("f", 200, 16, 16)
            .with_seed(9)
            .with_mean_fanin(5.5)
            .build()
            .unwrap();
        for (_, block) in n.iter_blocks() {
            assert!(block.used_inputs() <= 6);
        }
    }

    #[test]
    fn locality_changes_wiring_statistics() {
        let local = SyntheticSpec::new("l", 400, 16, 16)
            .with_seed(5)
            .with_locality(0.95)
            .with_window(16)
            .build()
            .unwrap();
        let global = SyntheticSpec::new("g", 400, 16, 16)
            .with_seed(5)
            .with_locality(0.0)
            .build()
            .unwrap();
        // Average "distance" between a LUT and its sources, measured in
        // creation order, must be clearly larger for the global circuit.
        let spread = |n: &Netlist| -> f64 {
            let mut total = 0f64;
            let mut count = 0f64;
            for (id, block) in n.iter_blocks() {
                for net in block.inputs.iter().flatten() {
                    let src = n.net(*net).driver;
                    total += (id.0 as f64 - src.0 as f64).abs();
                    count += 1.0;
                }
            }
            total / count
        };
        assert!(spread(&global) > 2.0 * spread(&local));
    }
}
