//! The netlist data model: blocks, nets and pins.

use crate::error::NetlistError;
use crate::ids::{BlockId, NetId};
use crate::lut::TruthTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One entry of [`Netlist::connectivity_signature`]: net name, driver block
/// name, and the sorted `(sink block name, sink slot)` pairs.
pub type NetSignature = (String, String, Vec<(String, u8)>);

/// What a block of the netlist is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// A `K`-input LUT, optionally followed by the flip-flop of its logic
    /// block (`registered`).
    Lut {
        /// The boolean function computed by the LUT.
        truth: TruthTable,
        /// Whether the logic-block flip-flop is used (registered output).
        registered: bool,
    },
    /// A primary input pad; drives one net through the site's output pin.
    InputPad,
    /// A primary output pad; consumes one net through the site's pin 0.
    OutputPad,
}

impl BlockKind {
    /// Whether this block occupies a logic block (as opposed to an I/O pad).
    pub fn is_lut(&self) -> bool {
        matches!(self, BlockKind::Lut { .. })
    }
}

/// A pin of a specific block: `slot` is the LUT input index for input pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PinRef {
    /// The block the pin belongs to.
    pub block: BlockId,
    /// Input slot (LUT input index, `0..K`). Output pads consume on slot 0.
    pub slot: u8,
}

/// A block of the netlist (LUT or I/O pad) with its connectivity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable, unique block name.
    pub name: String,
    /// What the block is.
    pub kind: BlockKind,
    /// Nets feeding each input slot; `None` for unused slots.
    pub inputs: Vec<Option<NetId>>,
    /// The net driven by this block, if any (LUTs and input pads drive one).
    pub output: Option<NetId>,
}

impl Block {
    /// Number of used input slots.
    pub fn used_inputs(&self) -> usize {
        self.inputs.iter().filter(|i| i.is_some()).count()
    }
}

/// A net: one driver and a set of sink pins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Human-readable, unique net name.
    pub name: String,
    /// The block driving the net.
    pub driver: BlockId,
    /// The pins the net must reach.
    pub sinks: Vec<PinRef>,
}

impl Net {
    /// Fanout of the net (number of sink pins).
    pub fn fanout(&self) -> usize {
        self.sinks.len()
    }
}

/// A technology-mapped netlist: the hardware task fed to the CAD flow.
///
/// Invariants (checked by [`Netlist::validate`]):
///
/// * block and net names are unique,
/// * every net has exactly one driver and at least zero sinks,
/// * every pin reference points at an existing block/net,
/// * no LUT uses more than `lut_size` inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    lut_size: u8,
    blocks: Vec<Block>,
    nets: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist for `lut_size`-input LUTs.
    pub fn new(name: impl Into<String>, lut_size: u8) -> Self {
        Netlist {
            name: name.into(),
            lut_size,
            blocks: Vec::new(),
            nets: Vec::new(),
        }
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The LUT size (`K`) the netlist is mapped to.
    pub const fn lut_size(&self) -> u8 {
        self.lut_size
    }

    /// All blocks, indexable by [`BlockId::index`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// Looks up a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Looks up a net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Number of blocks of any kind.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of LUT blocks (the paper's "LBs" column of Table II).
    pub fn lut_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.kind.is_lut()).count()
    }

    /// Number of primary input pads.
    pub fn input_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::InputPad))
            .count()
    }

    /// Number of primary output pads.
    pub fn output_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::OutputPad))
            .count()
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates over `(NetId, &Net)` pairs.
    pub fn iter_nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// Adds a primary input pad driving a fresh net named after the pad.
    ///
    /// Returns the pad's block id and the driven net id.
    pub fn add_input(&mut self, name: impl Into<String>) -> (BlockId, NetId) {
        let name = name.into();
        let block_id = BlockId(self.blocks.len() as u32);
        let net_id = NetId(self.nets.len() as u32);
        self.blocks.push(Block {
            name: name.clone(),
            kind: BlockKind::InputPad,
            inputs: Vec::new(),
            output: Some(net_id),
        });
        self.nets.push(Net {
            name,
            driver: block_id,
            sinks: Vec::new(),
        });
        (block_id, net_id)
    }

    /// Adds a primary output pad consuming `net`.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) -> BlockId {
        let block_id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.into(),
            kind: BlockKind::OutputPad,
            inputs: vec![Some(net)],
            output: None,
        });
        if let Some(n) = self.nets.get_mut(net.index()) {
            n.sinks.push(PinRef {
                block: block_id,
                slot: 0,
            });
        }
        block_id
    }

    /// Adds a LUT block computing `truth` over `input_nets`, driving a fresh
    /// net named after the block.
    ///
    /// Returns the block id and the driven net id.
    pub fn add_lut(
        &mut self,
        name: impl Into<String>,
        truth: TruthTable,
        input_nets: &[NetId],
        registered: bool,
    ) -> (BlockId, NetId) {
        let name = name.into();
        let net_id = self.reserve_net(name.clone());
        let block_id = self.add_lut_onto(net_id, name, truth, input_nets, registered);
        (block_id, net_id)
    }

    /// Reserves a net with no driver yet; a block added later with
    /// [`Netlist::add_lut_onto`] takes ownership. A netlist with a reserved
    /// but never-driven net fails [`Netlist::validate`], so reservations
    /// cannot leak past construction. This is how feedback through
    /// registers is built: the register's output net exists before the
    /// logic that reads it.
    pub fn reserve_net(&mut self, name: impl Into<String>) -> NetId {
        let net_id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            // Out-of-range sentinel: validate() rejects it if never claimed.
            driver: BlockId(u32::MAX),
            sinks: Vec::new(),
        });
        net_id
    }

    /// Adds a LUT block computing `truth` over `input_nets`, driving the
    /// previously reserved `output` net. Returns the block id.
    ///
    /// # Panics
    ///
    /// Panics if `output` is out of range.
    pub fn add_lut_onto(
        &mut self,
        output: NetId,
        name: impl Into<String>,
        truth: TruthTable,
        input_nets: &[NetId],
        registered: bool,
    ) -> BlockId {
        let block_id = BlockId(self.blocks.len() as u32);
        for (slot, net) in input_nets.iter().enumerate() {
            if let Some(n) = self.nets.get_mut(net.index()) {
                n.sinks.push(PinRef {
                    block: block_id,
                    slot: slot as u8,
                });
            }
        }
        self.blocks.push(Block {
            name: name.into(),
            kind: BlockKind::Lut { truth, registered },
            inputs: input_nets.iter().map(|&n| Some(n)).collect(),
            output: Some(output),
        });
        self.nets[output.index()].driver = block_id;
        block_id
    }

    /// Checks every structural invariant of the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut block_names: HashMap<&str, ()> = HashMap::with_capacity(self.blocks.len());
        for block in &self.blocks {
            if block_names.insert(block.name.as_str(), ()).is_some() {
                return Err(NetlistError::DuplicateBlockName {
                    name: block.name.clone(),
                });
            }
        }
        let mut net_names: HashMap<&str, ()> = HashMap::with_capacity(self.nets.len());
        for net in &self.nets {
            if net_names.insert(net.name.as_str(), ()).is_some() {
                return Err(NetlistError::DuplicateNetName {
                    name: net.name.clone(),
                });
            }
        }
        for (id, block) in self.iter_blocks() {
            if block.kind.is_lut() && block.used_inputs() > self.lut_size as usize {
                return Err(NetlistError::TooManyInputs {
                    block: id,
                    used: block.used_inputs(),
                    max: self.lut_size as usize,
                });
            }
            for net in block.inputs.iter().flatten() {
                if net.index() >= self.nets.len() {
                    return Err(NetlistError::DanglingNet { block: id });
                }
            }
            if let Some(out) = block.output {
                if out.index() >= self.nets.len() {
                    return Err(NetlistError::DanglingNet { block: id });
                }
                if self.nets[out.index()].driver != id {
                    return Err(NetlistError::MultipleDrivers { net: out });
                }
            }
        }
        for (id, net) in self.iter_nets() {
            let driver = net.driver;
            if driver.index() >= self.blocks.len() {
                return Err(NetlistError::UnknownBlock { block: driver });
            }
            if self.blocks[driver.index()].output != Some(id) {
                return Err(NetlistError::UndrivenNet { net: id });
            }
            for sink in &net.sinks {
                if sink.block.index() >= self.blocks.len() {
                    return Err(NetlistError::UnknownBlock { block: sink.block });
                }
                let sink_block = &self.blocks[sink.block.index()];
                match sink_block.inputs.get(sink.slot as usize) {
                    Some(Some(n)) if *n == id => {}
                    _ => return Err(NetlistError::UnknownNet { net: id }),
                }
            }
        }
        Ok(())
    }

    /// Connectivity signature of the netlist: for every net (sorted by name),
    /// the sorted list of `(driver name, sink names+slots)`.
    ///
    /// Two netlists with the same signature implement the same hypergraph, no
    /// matter how their blocks are numbered. Used by the end-to-end tests to
    /// compare a decoded/relocated configuration against the original circuit.
    pub fn connectivity_signature(&self) -> Vec<NetSignature> {
        let mut sig: Vec<NetSignature> = self
            .nets
            .iter()
            .map(|net| {
                let mut sinks: Vec<(String, u8)> = net
                    .sinks
                    .iter()
                    .map(|s| (self.blocks[s.block.index()].name.clone(), s.slot))
                    .collect();
                sinks.sort();
                (
                    net.name.clone(),
                    self.blocks[net.driver.index()].name.clone(),
                    sinks,
                )
            })
            .collect();
        sig.sort();
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("tiny", 6);
        let (_, a) = n.add_input("a");
        let (_, b) = n.add_input("b");
        let xor = TruthTable::from_fn(2, |i| (i.count_ones() % 2) == 1).widen(6);
        let (_, y) = n.add_lut("xor0", xor, &[a, b], false);
        n.add_output("out", y);
        n
    }

    #[test]
    fn tiny_netlist_is_valid() {
        let n = tiny();
        assert!(n.validate().is_ok());
        assert_eq!(n.lut_count(), 1);
        assert_eq!(n.input_count(), 2);
        assert_eq!(n.output_count(), 1);
        assert_eq!(n.net_count(), 3);
    }

    #[test]
    fn fanout_tracks_sinks() {
        let n = tiny();
        let (_, net_a) = n.iter_nets().find(|(_, net)| net.name == "a").unwrap();
        assert_eq!(net_a.fanout(), 1);
    }

    #[test]
    fn duplicate_block_names_are_rejected() {
        let mut n = Netlist::new("dup", 6);
        n.add_input("x");
        n.add_input("x");
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DuplicateBlockName { .. })
        ));
    }

    #[test]
    fn too_many_inputs_rejected() {
        let mut n = Netlist::new("wide", 2);
        let (_, a) = n.add_input("a");
        let (_, b) = n.add_input("b");
        let (_, c) = n.add_input("c");
        let t = TruthTable::zeros(2);
        n.add_lut("bad", t, &[a, b, c], false);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::TooManyInputs {
                used: 3,
                max: 2,
                ..
            })
        ));
    }

    #[test]
    fn connectivity_signature_is_stable_under_identical_construction() {
        assert_eq!(
            tiny().connectivity_signature(),
            tiny().connectivity_signature()
        );
    }

    #[test]
    fn output_pad_consumes_on_slot_zero() {
        let n = tiny();
        let (_, y) = n
            .iter_nets()
            .find(|(_, net)| net.name == "xor0")
            .expect("lut output net");
        assert!(y.sinks.iter().any(|s| s.slot == 0));
    }
}
