//! The paper's benchmark set: the 20 largest MCNC circuits (Table II).
//!
//! The original MCNC netlists are not redistributable with this repository,
//! so each circuit is instantiated as a **synthetic equivalent** with the same
//! logic-block count, the same array size and plausible I/O counts, generated
//! deterministically from the circuit name. The paper's compression results
//! depend on routing density — how many of each macro's switches a routed
//! task uses — which the generator reproduces by construction (the same number
//! of LUTs routed on the same grid at the same normalized channel width), not
//! on the boolean functions themselves. See `DESIGN.md` for the substitution
//! rationale.

use crate::error::NetlistError;
use crate::generate::SyntheticSpec;
use crate::model::Netlist;

/// One row of Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McncCircuit {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// Edge length of the square logic array ("Size" column).
    pub size: u16,
    /// Minimum channel width reported by the paper ("MCW" column).
    pub min_channel_width: u16,
    /// Number of occupied logic blocks ("LBs" column).
    pub logic_blocks: u32,
    /// Primary input count used for the synthetic equivalent.
    pub inputs: u16,
    /// Primary output count used for the synthetic equivalent.
    pub outputs: u16,
}

impl McncCircuit {
    /// Total I/O pads of the synthetic equivalent.
    pub fn io_count(&self) -> u32 {
        self.inputs as u32 + self.outputs as u32
    }

    /// Number of grid sites of the circuit's array.
    pub fn sites(&self) -> u32 {
        self.size as u32 * self.size as u32
    }

    /// Fraction of grid sites occupied by logic blocks or pads.
    pub fn occupancy(&self) -> f64 {
        (self.logic_blocks + self.io_count()) as f64 / self.sites() as f64
    }

    /// Deterministic RNG seed derived from the circuit name.
    pub fn seed(&self) -> u64 {
        // FNV-1a over the name: stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Builds the synthetic equivalent of this circuit at full size.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from the generator (this only happens if
    /// the table entry itself were inconsistent).
    pub fn build(&self) -> Result<Netlist, NetlistError> {
        self.build_scaled(1.0)
    }

    /// Builds a scaled-down equivalent: `scale` multiplies the logic-block and
    /// I/O counts (useful to keep CI-sized tests fast). `scale = 1.0` is the
    /// full circuit of Table II.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from the generator, e.g. when `scale` is so
    /// small that no LUT or pad is left.
    pub fn build_scaled(&self, scale: f64) -> Result<Netlist, NetlistError> {
        let luts = ((self.logic_blocks as f64 * scale).round() as usize).max(1);
        let inputs = ((self.inputs as f64 * scale).round() as usize).max(1);
        let outputs = ((self.outputs as f64 * scale).round() as usize).max(1);
        // Denser circuits (higher MCW in Table II) get lower locality so the
        // synthetic equivalent routes densely too.
        let locality = match self.min_channel_width {
            0..=8 => 0.93,
            9..=11 => 0.88,
            12..=14 => 0.82,
            _ => 0.76,
        };
        SyntheticSpec::new(self.name, luts, inputs, outputs)
            .with_seed(self.seed())
            .with_locality(locality)
            .with_mean_fanin(3.2 + 0.12 * self.min_channel_width as f64)
            .with_window((luts / 12).clamp(16, 256))
            .build()
    }

    /// The grid edge length used for a scaled build (the smallest square that
    /// holds the scaled blocks plus pads, never larger than the paper's size).
    pub fn scaled_size(&self, scale: f64) -> u16 {
        if (scale - 1.0).abs() < f64::EPSILON {
            return self.size;
        }
        let luts = ((self.logic_blocks as f64 * scale).round() as u32).max(1);
        let ios = ((self.io_count() as f64 * scale).round() as u32).max(2);
        let mut edge = 1u16;
        while (edge as u32 * edge as u32) < luts + ios {
            edge += 1;
        }
        edge.min(self.size)
    }
}

/// Table II of the paper: the 20 largest MCNC benchmark circuits.
///
/// The `inputs`/`outputs` columns are not part of Table II; they are the I/O
/// counts used by the synthetic equivalents, chosen close to the historical
/// MCNC values but capped so that logic blocks plus pads fit the paper's array
/// size (this model places I/O pads on grid sites, see `DESIGN.md`).
pub const TABLE2: [McncCircuit; 20] = [
    McncCircuit {
        name: "alu4",
        size: 35,
        min_channel_width: 9,
        logic_blocks: 1173,
        inputs: 14,
        outputs: 8,
    },
    McncCircuit {
        name: "apex2",
        size: 39,
        min_channel_width: 12,
        logic_blocks: 1478,
        inputs: 38,
        outputs: 3,
    },
    McncCircuit {
        name: "apex4",
        size: 32,
        min_channel_width: 15,
        logic_blocks: 970,
        inputs: 9,
        outputs: 19,
    },
    McncCircuit {
        name: "bigkey",
        size: 27,
        min_channel_width: 8,
        logic_blocks: 683,
        inputs: 24,
        outputs: 21,
    },
    McncCircuit {
        name: "clma",
        size: 79,
        min_channel_width: 15,
        logic_blocks: 6226,
        inputs: 8,
        outputs: 7,
    },
    McncCircuit {
        name: "des",
        size: 32,
        min_channel_width: 8,
        logic_blocks: 554,
        inputs: 245,
        outputs: 220,
    },
    McncCircuit {
        name: "diffeq",
        size: 30,
        min_channel_width: 10,
        logic_blocks: 869,
        inputs: 18,
        outputs: 13,
    },
    McncCircuit {
        name: "dsip",
        size: 27,
        min_channel_width: 9,
        logic_blocks: 680,
        inputs: 26,
        outputs: 22,
    },
    McncCircuit {
        name: "elliptic",
        size: 47,
        min_channel_width: 13,
        logic_blocks: 2134,
        inputs: 40,
        outputs: 35,
    },
    McncCircuit {
        name: "ex1010",
        size: 56,
        min_channel_width: 16,
        logic_blocks: 3093,
        inputs: 10,
        outputs: 10,
    },
    McncCircuit {
        name: "ex5p",
        size: 28,
        min_channel_width: 13,
        logic_blocks: 740,
        inputs: 8,
        outputs: 36,
    },
    McncCircuit {
        name: "frisc",
        size: 55,
        min_channel_width: 16,
        logic_blocks: 2940,
        inputs: 20,
        outputs: 64,
    },
    McncCircuit {
        name: "misex3",
        size: 35,
        min_channel_width: 11,
        logic_blocks: 1158,
        inputs: 14,
        outputs: 14,
    },
    McncCircuit {
        name: "pdc",
        size: 61,
        min_channel_width: 15,
        logic_blocks: 3629,
        inputs: 16,
        outputs: 40,
    },
    McncCircuit {
        name: "s298",
        size: 37,
        min_channel_width: 8,
        logic_blocks: 1301,
        inputs: 4,
        outputs: 6,
    },
    McncCircuit {
        name: "s38417",
        size: 58,
        min_channel_width: 8,
        logic_blocks: 3333,
        inputs: 15,
        outputs: 15,
    },
    McncCircuit {
        name: "s38584.1",
        size: 65,
        min_channel_width: 9,
        logic_blocks: 4219,
        inputs: 3,
        outputs: 3,
    },
    McncCircuit {
        name: "seq",
        size: 37,
        min_channel_width: 12,
        logic_blocks: 1325,
        inputs: 24,
        outputs: 20,
    },
    McncCircuit {
        name: "spla",
        size: 55,
        min_channel_width: 14,
        logic_blocks: 3005,
        inputs: 10,
        outputs: 10,
    },
    McncCircuit {
        name: "tseng",
        size: 29,
        min_channel_width: 8,
        logic_blocks: 799,
        inputs: 22,
        outputs: 20,
    },
];

/// Looks up a Table II entry by circuit name.
pub fn by_name(name: &str) -> Option<&'static McncCircuit> {
    TABLE2.iter().find(|c| c.name == name)
}

/// The subset of Table II circuits with more than one thousand logic blocks
/// (the paper notes that 13 of the 20 qualify).
pub fn over_thousand_lbs() -> impl Iterator<Item = &'static McncCircuit> {
    TABLE2.iter().filter(|c| c.logic_blocks > 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_twenty_circuits_with_unique_names() {
        assert_eq!(TABLE2.len(), 20);
        let mut names: Vec<&str> = TABLE2.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn thirteen_circuits_exceed_one_thousand_lbs() {
        // The paper: "Of these 20 benchmarks, 13 of them contain over a
        // thousand logic blocks."
        assert_eq!(over_thousand_lbs().count(), 13);
    }

    #[test]
    fn every_circuit_fits_its_array() {
        for c in &TABLE2 {
            assert!(
                c.logic_blocks + c.io_count() <= c.sites(),
                "{} does not fit a {}x{} array",
                c.name,
                c.size,
                c.size
            );
            assert!(c.occupancy() > 0.4, "{} is implausibly sparse", c.name);
        }
    }

    #[test]
    fn table_values_match_the_paper() {
        let clma = by_name("clma").unwrap();
        assert_eq!(
            (clma.size, clma.min_channel_width, clma.logic_blocks),
            (79, 15, 6226)
        );
        let tseng = by_name("tseng").unwrap();
        assert_eq!(
            (tseng.size, tseng.min_channel_width, tseng.logic_blocks),
            (29, 8, 799)
        );
        let ex1010 = by_name("ex1010").unwrap();
        assert_eq!(ex1010.min_channel_width, 16);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn scaled_build_matches_requested_fraction() {
        let c = by_name("ex5p").unwrap();
        let n = c.build_scaled(0.1).unwrap();
        assert_eq!(n.lut_count(), 74);
        assert!(n.input_count() >= 1);
        assert!(n.output_count() >= 1);
        n.validate().unwrap();
    }

    #[test]
    fn scaled_size_shrinks_but_fits() {
        let c = by_name("clma").unwrap();
        let edge = c.scaled_size(0.05);
        assert!(edge < c.size);
        let n = c.build_scaled(0.05).unwrap();
        assert!(n.block_count() as u32 <= edge as u32 * edge as u32);
        assert_eq!(c.scaled_size(1.0), c.size);
    }

    #[test]
    fn seeds_differ_between_circuits() {
        let a = by_name("alu4").unwrap().seed();
        let b = by_name("apex2").unwrap().seed();
        assert_ne!(a, b);
    }

    #[test]
    fn full_build_matches_table_for_a_small_circuit() {
        let c = by_name("des").unwrap();
        let n = c.build().unwrap();
        assert_eq!(n.lut_count() as u32, c.logic_blocks);
        assert_eq!(n.input_count() as u16, c.inputs);
        assert_eq!(n.output_count() as u16, c.outputs);
    }
}
