//! Reading and writing a pragmatic subset of the Berkeley Logic Interchange
//! Format (BLIF).
//!
//! The supported subset is what a LUT-mapped MCNC-style circuit needs:
//! `.model`, `.inputs`, `.outputs`, `.names` (single-output cover),
//! `.latch` (rising-edge, no explicit clock handling) and `.end`, with `\`
//! line continuations and `#` comments.
//!
//! Latches are folded into the logic block that drives them: a `.names`
//! immediately feeding a `.latch` becomes a *registered* LUT, matching the
//! architecture's logic block (6-LUT + optional flip-flop). A latch fed by a
//! primary input or by a multi-fanout signal gets a pass-through LUT inserted.

use crate::error::NetlistError;
use crate::ids::NetId;
use crate::lut::TruthTable;
use crate::model::{BlockKind, Netlist};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a netlist to BLIF text.
///
/// Registered LUTs are emitted as a `.names` driving an intermediate signal
/// named `<net>__d` followed by a `.latch` onto the visible net name, so the
/// output round-trips through [`parse`].
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", netlist.name());
    let inputs: Vec<&str> = netlist
        .iter_blocks()
        .filter(|(_, b)| matches!(b.kind, BlockKind::InputPad))
        .map(|(_, b)| b.name.as_str())
        .collect();
    // Primary outputs are named after the nets feeding the output pads, so
    // the text round-trips without inserting buffer LUTs.
    let outputs: Vec<&str> = netlist
        .iter_blocks()
        .filter(|(_, b)| matches!(b.kind, BlockKind::OutputPad))
        .filter_map(|(_, b)| b.inputs.first().copied().flatten())
        .map(|net| netlist.net(net).name.as_str())
        .collect();
    let _ = writeln!(out, ".inputs {}", inputs.join(" "));
    let _ = writeln!(out, ".outputs {}", outputs.join(" "));

    for (_, block) in netlist.iter_blocks() {
        match &block.kind {
            BlockKind::Lut { truth, registered } => {
                let out_net = block.output.expect("LUT always drives a net");
                let out_name = netlist.net(out_net).name.clone();
                let used: Vec<(usize, NetId)> = block
                    .inputs
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, n)| n.map(|n| (slot, n)))
                    .collect();
                let target = if *registered {
                    format!("{out_name}__d")
                } else {
                    out_name.clone()
                };
                let input_names: Vec<String> = used
                    .iter()
                    .map(|(_, n)| netlist.net(*n).name.clone())
                    .collect();
                let _ = writeln!(out, ".names {} {}", input_names.join(" "), target);
                // Emit one cover line per minterm of the used inputs.
                let k = used.len();
                for idx in 0..(1usize << k) {
                    // Expand the compacted index back to the full truth table:
                    // unused inputs are don't-care, so probe with them at 0.
                    let mut full = 0usize;
                    for (bit, (slot, _)) in used.iter().enumerate() {
                        if (idx >> bit) & 1 == 1 {
                            full |= 1 << slot;
                        }
                    }
                    if truth.get(full) {
                        let mut pattern = String::with_capacity(k);
                        for bit in 0..k {
                            pattern.push(if (idx >> bit) & 1 == 1 { '1' } else { '0' });
                        }
                        let _ = writeln!(out, "{pattern} 1");
                    }
                }
                if k == 0 && truth.get(0) {
                    let _ = writeln!(out, "1");
                }
                if *registered {
                    let _ = writeln!(out, ".latch {target} {out_name} re clk 0");
                }
            }
            BlockKind::InputPad | BlockKind::OutputPad => {}
        }
    }
    let _ = writeln!(out, ".end");
    out
}

/// Parses a BLIF-subset description into a netlist mapped to `lut_size`-input
/// LUTs.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBlif`] on malformed input, and the usual
/// validation errors if the parsed circuit is structurally inconsistent or
/// uses covers wider than `lut_size`.
pub fn parse(text: &str, lut_size: u8) -> Result<Netlist, NetlistError> {
    let logical_lines = join_continuations(text);

    let mut model_name = String::from("blif_circuit");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    struct Cover {
        line: usize,
        inputs: Vec<String>,
        output: String,
        minterms: Vec<(String, bool)>,
    }
    let mut covers: Vec<Cover> = Vec::new();
    // latch input signal -> latch output signal
    let mut latches: Vec<(usize, String, String)> = Vec::new();

    let mut i = 0usize;
    while i < logical_lines.len() {
        let (line_no, line) = &logical_lines[i];
        let line_no = *line_no;
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else {
            i += 1;
            continue;
        };
        match head {
            ".model" => {
                if let Some(name) = tokens.next() {
                    model_name = name.to_string();
                }
            }
            ".inputs" => input_names.extend(tokens.map(str::to_string)),
            ".outputs" => output_names.extend(tokens.map(str::to_string)),
            ".latch" => {
                let input = tokens.next().map(str::to_string);
                let output = tokens.next().map(str::to_string);
                match (input, output) {
                    (Some(inp), Some(out)) => latches.push((line_no, inp, out)),
                    _ => {
                        return Err(NetlistError::ParseBlif {
                            line: line_no,
                            reason: ".latch needs an input and an output signal".into(),
                        })
                    }
                }
            }
            ".names" => {
                let mut signals: Vec<String> = tokens.map(str::to_string).collect();
                let output = signals.pop().ok_or(NetlistError::ParseBlif {
                    line: line_no,
                    reason: ".names needs at least an output signal".into(),
                })?;
                let mut minterms = Vec::new();
                while i + 1 < logical_lines.len() && !logical_lines[i + 1].1.starts_with('.') {
                    i += 1;
                    let (cover_line, cover) = &logical_lines[i];
                    let parts: Vec<&str> = cover.split_whitespace().collect();
                    let (pattern, value) = match parts.as_slice() {
                        [value] if signals.is_empty() => ("", *value),
                        [pattern, value] => (*pattern, *value),
                        _ => {
                            return Err(NetlistError::ParseBlif {
                                line: *cover_line,
                                reason: format!("malformed cover line `{cover}`"),
                            })
                        }
                    };
                    let on = match value {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(NetlistError::ParseBlif {
                                line: *cover_line,
                                reason: format!("cover output must be 0 or 1, got `{other}`"),
                            })
                        }
                    };
                    minterms.push((pattern.to_string(), on));
                }
                covers.push(Cover {
                    line: line_no,
                    inputs: signals,
                    output,
                    minterms,
                });
            }
            ".end" => break,
            ".clock" | ".wire_load_slope" | ".default_input_arrival" => {}
            other => {
                return Err(NetlistError::ParseBlif {
                    line: line_no,
                    reason: format!("unsupported construct `{other}`"),
                })
            }
        }
        i += 1;
    }

    // Latch folding: signal driven by a latch is "registered"; the cover that
    // computes the latch input becomes the registered LUT driving the latch
    // output signal.
    let mut latch_by_input: HashMap<String, String> = HashMap::new();
    for (line, inp, out) in &latches {
        if latch_by_input.insert(inp.clone(), out.clone()).is_some() {
            return Err(NetlistError::ParseBlif {
                line: *line,
                reason: format!("signal `{inp}` feeds more than one latch"),
            });
        }
    }

    let mut netlist = Netlist::new(model_name, lut_size);
    let mut nets: HashMap<String, NetId> = HashMap::new();

    for name in &input_names {
        let (_, net) = netlist.add_input(name.clone());
        nets.insert(name.clone(), net);
    }

    // If a primary input feeds a latch directly, insert a pass-through LUT so
    // the registered function lives in a logic block.
    for (_, inp, out) in &latches {
        if input_names.contains(inp) && !covers.iter().any(|c| &c.output == inp) {
            covers.push(Cover {
                line: 0,
                inputs: vec![inp.clone()],
                output: inp.clone(),
                minterms: vec![("1".into(), true)],
            });
            let _ = out;
        }
    }

    // Topologically add covers: repeat until no progress (combinational BLIF
    // from mapped circuits is acyclic on LUT boundaries; registered outputs
    // break cycles because they are created before their inputs are needed).
    // First create every registered output net eagerly so feedback through
    // registers resolves.
    let mut pending: Vec<&Cover> = covers.iter().collect();
    // Pre-create nets for latch outputs by adding their registered LUT later;
    // we reserve the name by mapping it when its driving cover is processed.
    let mut progress = true;
    while progress && !pending.is_empty() {
        progress = false;
        let mut still_pending = Vec::new();
        for cover in pending {
            let driven_signal = latch_by_input
                .get(&cover.output)
                .cloned()
                .unwrap_or_else(|| cover.output.clone());
            let registered = latch_by_input.contains_key(&cover.output);
            let ready = cover.inputs.iter().all(|s| nets.contains_key(s));
            if !ready {
                still_pending.push(cover);
                continue;
            }
            if cover.inputs.len() > lut_size as usize {
                return Err(NetlistError::ParseBlif {
                    line: cover.line,
                    reason: format!(
                        "cover for `{}` has {} inputs, more than LUT size {}",
                        cover.output,
                        cover.inputs.len(),
                        lut_size
                    ),
                });
            }
            let input_ids: Vec<NetId> = cover.inputs.iter().map(|s| nets[s]).collect();
            let truth = cover_to_truth(cover.inputs.len() as u8, &cover.minterms, lut_size)
                .map_err(|reason| NetlistError::ParseBlif {
                    line: cover.line,
                    reason,
                })?;
            let (_, out_net) =
                netlist.add_lut(driven_signal.clone(), truth, &input_ids, registered);
            nets.insert(driven_signal, out_net);
            progress = true;
        }
        pending = still_pending;
    }
    if let Some(cover) = pending.first() {
        return Err(NetlistError::ParseBlif {
            line: cover.line,
            reason: format!(
                "could not resolve inputs of `{}` (combinational cycle or undriven signal)",
                cover.output
            ),
        });
    }

    for name in &output_names {
        let net = nets
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::ParseBlif {
                line: 0,
                reason: format!("primary output `{name}` is never driven"),
            })?;
        netlist.add_output(format!("{name}__pad"), net);
    }

    netlist.validate()?;
    Ok(netlist)
}

/// Joins `\` continuations, strips comments and empty lines; returns
/// `(line_number, text)` pairs.
fn join_continuations(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = without_comment.trim();
        if trimmed.is_empty() && pending.is_none() {
            continue;
        }
        let (content, continued) = match trimmed.strip_suffix('\\') {
            Some(stripped) => (stripped.trim_end(), true),
            None => (trimmed, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    out.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content.to_string()));
                } else {
                    out.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some(p) = pending {
        out.push(p);
    }
    out
}

/// Converts a sum-of-products cover into a truth table widened to `lut_size`.
fn cover_to_truth(
    inputs: u8,
    minterms: &[(String, bool)],
    lut_size: u8,
) -> Result<TruthTable, String> {
    let mut table = TruthTable::zeros(inputs);
    for (pattern, on) in minterms {
        if inputs == 0 {
            if *on {
                table.set(0, true);
            }
            continue;
        }
        if pattern.len() != inputs as usize {
            return Err(format!(
                "cover pattern `{pattern}` does not match the {inputs} cover inputs"
            ));
        }
        // Expand '-' don't-cares recursively over the pattern.
        let positions: Vec<char> = pattern.chars().collect();
        let dash_count = positions.iter().filter(|&&c| c == '-').count();
        for combo in 0..(1usize << dash_count) {
            let mut index = 0usize;
            let mut dash_seen = 0usize;
            for (bit, &c) in positions.iter().enumerate() {
                let value = match c {
                    '1' => true,
                    '0' => false,
                    '-' => {
                        let v = (combo >> dash_seen) & 1 == 1;
                        dash_seen += 1;
                        v
                    }
                    other => return Err(format!("invalid cover character `{other}`")),
                };
                if value {
                    index |= 1 << bit;
                }
            }
            table.set(index, *on);
        }
    }
    Ok(table.widen(lut_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SyntheticSpec;

    const SAMPLE: &str = "\
# a tiny registered circuit
.model sample
.inputs a b
.outputs y q
.names a b y
11 1
.names a b q_in
10 1
01 1
.latch q_in q re clk 0
.names q q
# identity cover would be a cycle; instead drive q from the latch only
.end
";

    #[test]
    fn parses_inputs_outputs_and_covers() {
        // Remove the degenerate `.names q q` line for a clean circuit.
        let text = SAMPLE.replace(".names q q\n", "");
        let n = parse(&text, 6).expect("parse");
        assert_eq!(n.input_count(), 2);
        assert_eq!(n.output_count(), 2);
        assert_eq!(n.lut_count(), 2);
        // The latch folded into a registered LUT.
        let registered = n
            .iter_blocks()
            .filter(|(_, b)| {
                matches!(
                    b.kind,
                    BlockKind::Lut {
                        registered: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(registered, 1);
    }

    #[test]
    fn rejects_malformed_cover_lines() {
        let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 2\n.end\n";
        assert!(matches!(
            parse(text, 6),
            Err(NetlistError::ParseBlif { line: 5, .. })
        ));
    }

    #[test]
    fn rejects_unknown_constructs() {
        let text = ".model m\n.gate nand2 A=a B=b Y=y\n.end\n";
        assert!(matches!(
            parse(text, 6),
            Err(NetlistError::ParseBlif { .. })
        ));
    }

    #[test]
    fn dash_dont_care_expands() {
        let text = ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-1 1\n.end\n";
        let n = parse(text, 6).expect("parse");
        let (_, block) = n
            .iter_blocks()
            .find(|(_, b)| b.kind.is_lut())
            .expect("one lut");
        if let BlockKind::Lut { truth, .. } = &block.kind {
            // a=1, c=1 regardless of b.
            assert!(truth.evaluate(&[true, false, true, false, false, false]));
            assert!(truth.evaluate(&[true, true, true, false, false, false]));
            assert!(!truth.evaluate(&[false, true, true, false, false, false]));
        }
    }

    #[test]
    fn write_then_parse_roundtrips_connectivity() {
        let original = SyntheticSpec::new("rt", 40, 6, 5)
            .with_seed(11)
            .build()
            .expect("generate");
        let text = write(&original);
        let reparsed = parse(&text, 6).expect("reparse");
        assert_eq!(reparsed.lut_count(), original.lut_count());
        assert_eq!(reparsed.input_count(), original.input_count());
        assert_eq!(reparsed.output_count(), original.output_count());
    }

    #[test]
    fn continuation_lines_are_joined() {
        let text = ".model m\n.inputs a \\\n b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let n = parse(text, 6).expect("parse");
        assert_eq!(n.input_count(), 2);
    }
}
