//! Reading and writing a pragmatic subset of the Berkeley Logic Interchange
//! Format (BLIF).
//!
//! The supported subset is what a LUT-mapped MCNC-style circuit needs:
//! `.model`, `.inputs`, `.outputs`, `.names` (single-output cover, on-set or
//! off-set polarity, `-` don't-cares), `.latch` (every token form of the
//! spec: `input output`, `input output init`, `input output type control`
//! and `input output type control init`) and `.end`, with `\` line
//! continuations and `#` comments. A `.exdc` section (external don't-cares)
//! is recognized and skipped — ignoring don't-care information is always
//! sound. Hierarchical constructs (`.subckt`) and library gates
//! (`.gate`/`.mlatch`) are rejected with line-accurate errors rather than
//! misparsed.
//!
//! # Latch semantics
//!
//! Latches map onto the architecture's logic block (6-LUT + optional
//! flip-flop). A `.names` cover whose output feeds exactly one latch and
//! nothing else is *folded* into a registered LUT driving the latch output.
//! When the latch-input signal has further fanout (other covers, other
//! latches, or a primary output read it), the combinational net is kept
//! separate: the cover stays an ordinary LUT under its own name and the
//! latch becomes a registered pass-through LUT, so consumers of the
//! combinational signal never silently read the registered value. Latch
//! outputs exist as nets before cover inputs are resolved, so feedback
//! through registers (counters, state machines) parses; purely
//! combinational cycles are detected and rejected.
//!
//! Initial latch states `0`, `2` (don't-care) and `3` (unknown) are
//! accepted — the architecture model resets registers to zero, which
//! satisfies all three. An initial state of `1` cannot be honoured and is
//! rejected explicitly instead of being dropped.

use crate::error::NetlistError;
use crate::ids::NetId;
use crate::lut::TruthTable;
use crate::model::{BlockKind, Netlist};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a netlist to BLIF text.
///
/// Registered LUTs are emitted as a `.names` driving an intermediate signal
/// named `<net>__d` followed by a `.latch` onto the visible net name, so the
/// output round-trips through [`parse`]. When several output pads share one
/// driver net, the extra pads are emitted as identity-buffer covers named
/// after the pad (BLIF cannot list the same output name twice), so the text
/// stays legal and `write → parse → write` reaches a byte-stable fixpoint
/// after one trip.
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", netlist.name());
    let inputs: Vec<&str> = netlist
        .iter_blocks()
        .filter(|(_, b)| matches!(b.kind, BlockKind::InputPad))
        .map(|(_, b)| b.name.as_str())
        .collect();
    // Primary outputs are named after the nets feeding the output pads, so
    // the text round-trips without inserting buffer LUTs. A net feeding a
    // second pad cannot be listed twice; that pad is listed under its own
    // block name and materialized below as an identity buffer.
    let mut outputs: Vec<String> = Vec::new();
    let mut buffers: Vec<(String, String)> = Vec::new();
    for (_, block) in netlist.iter_blocks() {
        if !matches!(block.kind, BlockKind::OutputPad) {
            continue;
        }
        let Some(net) = block.inputs.first().copied().flatten() else {
            continue;
        };
        let net_name = netlist.net(net).name.clone();
        if outputs.contains(&net_name) {
            outputs.push(block.name.clone());
            buffers.push((net_name, block.name.clone()));
        } else {
            outputs.push(net_name);
        }
    }
    out.push_str(&keyword_line(".inputs", inputs.iter().copied()));
    out.push_str(&keyword_line(
        ".outputs",
        outputs.iter().map(String::as_str),
    ));

    for (_, block) in netlist.iter_blocks() {
        match &block.kind {
            BlockKind::Lut { truth, registered } => {
                let out_net = block.output.expect("LUT always drives a net");
                let out_name = netlist.net(out_net).name.clone();
                let used: Vec<(usize, NetId)> = block
                    .inputs
                    .iter()
                    .enumerate()
                    .filter_map(|(slot, n)| n.map(|n| (slot, n)))
                    .collect();
                let target = if *registered {
                    format!("{out_name}__d")
                } else {
                    out_name.clone()
                };
                let mut signals: Vec<String> = used
                    .iter()
                    .map(|(_, n)| netlist.net(*n).name.clone())
                    .collect();
                signals.push(target.clone());
                out.push_str(&keyword_line(".names", signals.iter().map(String::as_str)));
                // Emit one cover line per minterm of the used inputs.
                let k = used.len();
                if k == 0 {
                    if truth.get(0) {
                        out.push_str("1\n");
                    }
                    if *registered {
                        let _ = writeln!(out, ".latch {target} {out_name} re clk 0");
                    }
                    continue;
                }
                for idx in 0..(1usize << k) {
                    // Expand the compacted index back to the full truth table:
                    // unused inputs are don't-care, so probe with them at 0.
                    let mut full = 0usize;
                    for (bit, (slot, _)) in used.iter().enumerate() {
                        if (idx >> bit) & 1 == 1 {
                            full |= 1 << slot;
                        }
                    }
                    if truth.get(full) {
                        let mut pattern = String::with_capacity(k);
                        for bit in 0..k {
                            pattern.push(if (idx >> bit) & 1 == 1 { '1' } else { '0' });
                        }
                        let _ = writeln!(out, "{pattern} 1");
                    }
                }
                if *registered {
                    let _ = writeln!(out, ".latch {target} {out_name} re clk 0");
                }
            }
            BlockKind::InputPad | BlockKind::OutputPad => {}
        }
    }
    for (net, alias) in &buffers {
        let _ = writeln!(out, ".names {net} {alias}");
        let _ = writeln!(out, "1 1");
    }
    let _ = writeln!(out, ".end");
    out
}

/// One BLIF statement line: the keyword alone when the list is empty,
/// otherwise keyword and names space-separated — never a trailing space.
fn keyword_line<'a>(keyword: &str, names: impl Iterator<Item = &'a str>) -> String {
    let mut line = String::from(keyword);
    for name in names {
        line.push(' ');
        line.push_str(name);
    }
    line.push('\n');
    line
}

/// A `.names` statement with its cover, as scanned from the text.
struct Cover {
    line: usize,
    inputs: Vec<String>,
    output: String,
    patterns: Vec<String>,
    /// `true` when the cover lines are the on-set (`<pattern> 1`), `false`
    /// for the off-set (`<pattern> 0`). Irrelevant for empty covers.
    on_set: bool,
}

/// A `.latch` statement, as scanned from the text.
struct Latch {
    line: usize,
    input: String,
    output: String,
}

/// Latch trigger types of the BLIF spec (`fe re ah al as`).
const LATCH_TYPES: [&str; 5] = ["fe", "re", "ah", "al", "as"];

/// Timing/annotation constructs that carry no logic and are skipped.
const IGNORED_CONSTRUCTS: [&str; 12] = [
    ".clock",
    ".area",
    ".delay",
    ".wire_load_slope",
    ".wire",
    ".input_arrival",
    ".default_input_arrival",
    ".output_required",
    ".default_output_required",
    ".input_drive",
    ".default_input_drive",
    ".cycle",
];

/// Parses a BLIF-subset description into a netlist mapped to `lut_size`-input
/// LUTs.
///
/// # Errors
///
/// Returns [`NetlistError::ParseBlif`] (with the 1-based source line) on
/// malformed input, [`NetlistError::DuplicateDriver`] (with both source
/// lines) when two constructs drive the same signal, and the usual
/// validation errors if the parsed circuit is structurally inconsistent or
/// uses covers wider than `lut_size`.
pub fn parse(text: &str, lut_size: u8) -> Result<Netlist, NetlistError> {
    let logical_lines = join_continuations(text);

    let mut model_name: Option<String> = None;
    let mut input_names: Vec<(usize, String)> = Vec::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();
    let mut covers: Vec<Cover> = Vec::new();
    let mut latches: Vec<Latch> = Vec::new();

    let mut i = 0usize;
    let mut in_exdc = false;
    while i < logical_lines.len() {
        let (line_no, line) = &logical_lines[i];
        let line_no = *line_no;
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else {
            i += 1;
            continue;
        };
        // The `.exdc` section describes external don't-cares as a second
        // network terminated by the model's `.end`. Ignoring don't-care
        // freedom is always sound, so the section is skipped wholesale —
        // its covers must never leak into the care network.
        if in_exdc {
            if head == ".end" {
                break;
            }
            i += 1;
            continue;
        }
        match head {
            ".model" => {
                if model_name.is_some() {
                    return Err(NetlistError::ParseBlif {
                        line: line_no,
                        reason: "multiple `.model` sections; only flat single-model BLIF \
                                 is supported"
                            .into(),
                    });
                }
                model_name = Some(
                    tokens
                        .next()
                        .map_or_else(|| "blif_circuit".to_string(), str::to_string),
                );
            }
            ".inputs" => input_names.extend(tokens.map(|t| (line_no, t.to_string()))),
            ".outputs" => {
                for name in tokens {
                    if let Some((first, _)) = output_names.iter().find(|(_, n)| n == name) {
                        return Err(NetlistError::ParseBlif {
                            line: line_no,
                            reason: format!(
                                "primary output `{name}` is listed twice (first at line {first})"
                            ),
                        });
                    }
                    output_names.push((line_no, name.to_string()));
                }
            }
            ".latch" => latches.push(parse_latch(line_no, &tokens.collect::<Vec<_>>())?),
            ".names" => {
                let mut signals: Vec<String> = tokens.map(str::to_string).collect();
                let output = signals.pop().ok_or(NetlistError::ParseBlif {
                    line: line_no,
                    reason: ".names needs at least an output signal".into(),
                })?;
                let mut patterns = Vec::new();
                // (line, polarity) of the first cover line, for mixed-set
                // diagnostics.
                let mut polarity: Option<(usize, bool)> = None;
                while i + 1 < logical_lines.len() && !logical_lines[i + 1].1.starts_with('.') {
                    i += 1;
                    let (cover_line, cover) = &logical_lines[i];
                    let parts: Vec<&str> = cover.split_whitespace().collect();
                    let (pattern, value) = match parts.as_slice() {
                        [value] if signals.is_empty() => ("", *value),
                        [pattern, value] => (*pattern, *value),
                        _ => {
                            return Err(NetlistError::ParseBlif {
                                line: *cover_line,
                                reason: format!("malformed cover line `{cover}`"),
                            })
                        }
                    };
                    let on = match value {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(NetlistError::ParseBlif {
                                line: *cover_line,
                                reason: format!("cover output must be 0 or 1, got `{other}`"),
                            })
                        }
                    };
                    match polarity {
                        None => polarity = Some((*cover_line, on)),
                        Some((first_line, first_on)) if first_on != on => {
                            return Err(NetlistError::ParseBlif {
                                line: *cover_line,
                                reason: format!(
                                    "cover for `{output}` mixes on-set and off-set lines \
                                     (output `{}` at line {first_line}, `{}` here)",
                                    i32::from(first_on),
                                    i32::from(on)
                                ),
                            })
                        }
                        Some(_) => {}
                    }
                    patterns.push(pattern.to_string());
                }
                covers.push(Cover {
                    line: line_no,
                    inputs: signals,
                    output,
                    patterns,
                    on_set: polarity.is_none_or(|(_, on)| on),
                });
            }
            ".end" => break,
            ".exdc" => in_exdc = true,
            ".subckt" => {
                return Err(NetlistError::ParseBlif {
                    line: line_no,
                    reason: "hierarchical BLIF (`.subckt`) is not supported; flatten the \
                             design first"
                        .into(),
                })
            }
            ".gate" | ".mlatch" => {
                return Err(NetlistError::ParseBlif {
                    line: line_no,
                    reason: format!(
                        "library construct `{head}` is not supported; use technology-mapped \
                         `.names` covers"
                    ),
                })
            }
            other if other.starts_with('.') => {
                if !IGNORED_CONSTRUCTS.contains(&other) {
                    return Err(NetlistError::ParseBlif {
                        line: line_no,
                        reason: format!("unsupported construct `{other}`"),
                    });
                }
            }
            _ => {
                return Err(NetlistError::ParseBlif {
                    line: line_no,
                    reason: format!("cover line `{line}` outside a `.names` block"),
                })
            }
        }
        i += 1;
    }

    // Every signal has exactly one driver: a primary input, a cover output
    // or a latch output. Collisions are reported with both source lines.
    let mut driver_lines: HashMap<&str, usize> = HashMap::new();
    let mut declarations: Vec<(usize, &str)> = input_names
        .iter()
        .map(|(line, name)| (*line, name.as_str()))
        .chain(covers.iter().map(|c| (c.line, c.output.as_str())))
        .chain(latches.iter().map(|l| (l.line, l.output.as_str())))
        .collect();
    declarations.sort_by_key(|(line, _)| *line);
    for (line, signal) in declarations {
        if let Some(&first) = driver_lines.get(signal) {
            return Err(NetlistError::DuplicateDriver {
                signal: signal.to_string(),
                first_line: first,
                second_line: line,
            });
        }
        driver_lines.insert(signal, line);
    }

    // Reader counts decide latch folding: a cover folds into a registered
    // LUT only when the latch is the *sole* reader of its output signal.
    let mut reads: HashMap<&str, usize> = HashMap::new();
    for signal in covers
        .iter()
        .flat_map(|c| c.inputs.iter())
        .chain(latches.iter().map(|l| &l.input))
        .chain(output_names.iter().map(|(_, n)| n))
    {
        *reads.entry(signal.as_str()).or_default() += 1;
    }
    // cover output signal -> latch output signal, for folded latches.
    let mut folded: HashMap<&str, &str> = HashMap::new();
    for latch in &latches {
        let d = latch.input.as_str();
        let sole_reader = reads.get(d).copied() == Some(1);
        let driven_by_cover = covers.iter().any(|c| c.output == d);
        if sole_reader && driven_by_cover && d != latch.output {
            folded.insert(d, latch.output.as_str());
        }
    }

    let mut netlist = Netlist::new(
        model_name.unwrap_or_else(|| "blif_circuit".to_string()),
        lut_size,
    );
    let mut nets: HashMap<String, NetId> = HashMap::new();
    for (_, name) in &input_names {
        let (_, net) = netlist.add_input(name.clone());
        nets.insert(name.clone(), net);
    }
    // Reserve every driven net up front — registered feedback (a cover
    // reading a latch output that its own output feeds) then resolves
    // without any topological ordering of the statements.
    for cover in &covers {
        let name = folded
            .get(cover.output.as_str())
            .copied()
            .unwrap_or(cover.output.as_str());
        let net = netlist.reserve_net(name);
        nets.insert(name.to_string(), net);
    }
    for latch in &latches {
        if !folded.values().any(|q| *q == latch.output) {
            let net = netlist.reserve_net(latch.output.clone());
            nets.insert(latch.output.clone(), net);
        }
    }

    // Cover source line per driven-signal name, for cycle diagnostics.
    let mut line_of: HashMap<String, usize> = HashMap::new();
    for cover in &covers {
        if cover.inputs.len() > lut_size as usize {
            return Err(NetlistError::ParseBlif {
                line: cover.line,
                reason: format!(
                    "cover for `{}` has {} inputs, more than LUT size {}",
                    cover.output,
                    cover.inputs.len(),
                    lut_size
                ),
            });
        }
        let mut input_ids = Vec::with_capacity(cover.inputs.len());
        for signal in &cover.inputs {
            let id = nets.get(signal).ok_or_else(|| NetlistError::ParseBlif {
                line: cover.line,
                reason: format!(
                    "signal `{signal}` read by `{}` is never driven",
                    cover.output
                ),
            })?;
            input_ids.push(*id);
        }
        let truth = cover_to_truth(
            cover.inputs.len() as u8,
            &cover.patterns,
            cover.on_set,
            lut_size,
        )
        .map_err(|reason| NetlistError::ParseBlif {
            line: cover.line,
            reason,
        })?;
        let (name, registered) = match folded.get(cover.output.as_str()) {
            Some(q) => (q.to_string(), true),
            None => (cover.output.clone(), false),
        };
        netlist.add_lut_onto(nets[&name], name.clone(), truth, &input_ids, registered);
        line_of.insert(name, cover.line);
    }
    // Latches that did not fold become registered pass-through LUTs, so the
    // combinational input net keeps its own (unregistered) identity.
    let identity = TruthTable::from_fn(1, |i| i == 1).widen(lut_size);
    for latch in &latches {
        if folded.contains_key(latch.input.as_str()) {
            continue;
        }
        let input = nets
            .get(&latch.input)
            .copied()
            .ok_or_else(|| NetlistError::ParseBlif {
                line: latch.line,
                reason: format!("latch input `{}` is never driven", latch.input),
            })?;
        netlist.add_lut_onto(
            nets[&latch.output],
            latch.output.clone(),
            identity.clone(),
            &[input],
            true,
        );
        line_of.insert(latch.output.clone(), latch.line);
    }

    for (line, name) in &output_names {
        let net = nets
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::ParseBlif {
                line: *line,
                reason: format!("primary output `{name}` is never driven"),
            })?;
        netlist.add_output(format!("{name}__pad"), net);
    }

    check_combinational_cycles(&netlist, &line_of)?;
    netlist.validate()?;
    Ok(netlist)
}

/// Parses the tokens after `.latch`, accepting every form of the spec:
/// `input output`, `input output init`, `input output type control` and
/// `input output type control init`.
fn parse_latch(line: usize, tokens: &[&str]) -> Result<Latch, NetlistError> {
    let err = |reason: String| NetlistError::ParseBlif { line, reason };
    let [input, output, rest @ ..] = tokens else {
        return Err(err(".latch needs an input and an output signal".to_string()));
    };
    let init = match rest {
        [] => None,
        [init] => Some(*init),
        [kind, _control] | [kind, _control, _] => {
            if !LATCH_TYPES.contains(kind) {
                return Err(err(format!(
                    "unknown latch trigger type `{kind}` (expected one of {})",
                    LATCH_TYPES.join(" ")
                )));
            }
            if let [_, _, init] = rest {
                Some(*init)
            } else {
                None
            }
        }
        _ => {
            return Err(err(format!(
                ".latch takes 2 to 5 fields (input output [type control] [init]), got {}",
                tokens.len()
            )))
        }
    };
    match init {
        // Unspecified init defaults to 3 (unknown); 0/2/3 are all satisfied
        // by the architecture's reset-to-zero registers.
        None | Some("0") | Some("2") | Some("3") => {}
        Some("1") => {
            return Err(err(format!(
                "latch `{output}` requires initial state 1, which the architecture model \
                 cannot honour (registers reset to 0)"
            )))
        }
        Some(other) => return Err(err(format!("latch init state must be 0-3, got `{other}`"))),
    }
    Ok(Latch {
        line,
        input: (*input).to_string(),
        output: (*output).to_string(),
    })
}

/// Rejects purely combinational cycles. Registered LUTs cut the dependency
/// (their output is the flip-flop, not a combinational function of their
/// inputs), so feedback through latches is fine.
fn check_combinational_cycles(
    netlist: &Netlist,
    line_of: &HashMap<String, usize>,
) -> Result<(), NetlistError> {
    let blocks = netlist.blocks();
    let combinational = |idx: usize| {
        matches!(
            blocks[idx].kind,
            BlockKind::Lut {
                registered: false,
                ..
            }
        )
    };
    let mut indegree = vec![0usize; blocks.len()];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
    for (idx, block) in blocks.iter().enumerate() {
        if !combinational(idx) {
            continue;
        }
        for net in block.inputs.iter().flatten() {
            let src = netlist.net(*net).driver.index();
            if combinational(src) {
                edges[src].push(idx);
                indegree[idx] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..blocks.len())
        .filter(|&i| combinational(i) && indegree[i] == 0)
        .collect();
    let mut resolved = 0usize;
    let total = (0..blocks.len()).filter(|&i| combinational(i)).count();
    while let Some(node) = queue.pop() {
        resolved += 1;
        for &next in &edges[node] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                queue.push(next);
            }
        }
    }
    if resolved < total {
        // Every unresolved block sits on (or downstream of) a cycle; report
        // the earliest-defined one for a stable, line-accurate diagnostic.
        let culprit = (0..blocks.len())
            .filter(|&i| combinational(i) && indegree[i] > 0)
            .min_by_key(|&i| line_of.get(&blocks[i].name).copied().unwrap_or(usize::MAX))
            .expect("an unresolved block exists");
        let name = &blocks[culprit].name;
        return Err(NetlistError::ParseBlif {
            line: line_of.get(name).copied().unwrap_or(0),
            reason: format!("combinational cycle through `{name}`"),
        });
    }
    Ok(())
}

/// Joins `\` continuations, strips comments and empty lines; returns
/// `(line_number, text)` pairs.
fn join_continuations(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = without_comment.trim();
        if trimmed.is_empty() && pending.is_none() {
            continue;
        }
        let (content, continued) = match trimmed.strip_suffix('\\') {
            Some(stripped) => (stripped.trim_end(), true),
            None => (trimmed, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    out.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content.to_string()));
                } else {
                    out.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some(p) = pending {
        out.push(p);
    }
    out
}

/// Converts a single-polarity cover into a truth table widened to
/// `lut_size`. An on-set cover sets the listed minterms in an all-zero
/// table; an off-set cover *clears* them in an all-one table (the function
/// is the complement of the off-set). An empty cover is the constant-0
/// function either way, matching the spec's reading of `.names` with no
/// cover lines.
fn cover_to_truth(
    inputs: u8,
    patterns: &[String],
    on_set: bool,
    lut_size: u8,
) -> Result<TruthTable, String> {
    let mut table = if on_set || patterns.is_empty() {
        TruthTable::zeros(inputs)
    } else {
        TruthTable::from_fn(inputs, |_| true)
    };
    for pattern in patterns {
        if inputs == 0 {
            table.set(0, on_set);
            continue;
        }
        if pattern.len() != inputs as usize {
            return Err(format!(
                "cover pattern `{pattern}` does not match the {inputs} cover inputs"
            ));
        }
        // Expand '-' don't-cares recursively over the pattern.
        let positions: Vec<char> = pattern.chars().collect();
        let dash_count = positions.iter().filter(|&&c| c == '-').count();
        for combo in 0..(1usize << dash_count) {
            let mut index = 0usize;
            let mut dash_seen = 0usize;
            for (bit, &c) in positions.iter().enumerate() {
                let value = match c {
                    '1' => true,
                    '0' => false,
                    '-' => {
                        let v = (combo >> dash_seen) & 1 == 1;
                        dash_seen += 1;
                        v
                    }
                    other => return Err(format!("invalid cover character `{other}`")),
                };
                if value {
                    index |= 1 << bit;
                }
            }
            table.set(index, on_set);
        }
    }
    Ok(table.widen(lut_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SyntheticSpec;

    const SAMPLE: &str = "\
# a tiny registered circuit
.model sample
.inputs a b
.outputs y q
.names a b y
11 1
.names a b q_in
10 1
01 1
.latch q_in q re clk 0
.end
";

    fn lut_of<'a>(n: &'a Netlist, name: &str) -> &'a crate::model::Block {
        n.iter_blocks()
            .find(|(_, b)| b.name == name && b.kind.is_lut())
            .map(|(_, b)| b)
            .unwrap_or_else(|| panic!("no LUT named `{name}`"))
    }

    #[test]
    fn parses_inputs_outputs_and_covers() {
        let n = parse(SAMPLE, 6).expect("parse");
        assert_eq!(n.input_count(), 2);
        assert_eq!(n.output_count(), 2);
        assert_eq!(n.lut_count(), 2);
        // The latch folded into a registered LUT.
        let registered = n
            .iter_blocks()
            .filter(|(_, b)| {
                matches!(
                    b.kind,
                    BlockKind::Lut {
                        registered: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(registered, 1);
    }

    #[test]
    fn rejects_malformed_cover_lines() {
        let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 2\n.end\n";
        assert!(matches!(
            parse(text, 6),
            Err(NetlistError::ParseBlif { line: 5, .. })
        ));
    }

    #[test]
    fn rejects_unknown_constructs() {
        let text = ".model m\n.search lib.blif\n.end\n";
        assert!(matches!(
            parse(text, 6),
            Err(NetlistError::ParseBlif { line: 2, .. })
        ));
    }

    #[test]
    fn gate_and_subckt_get_dedicated_errors() {
        let text = ".model m\n.gate nand2 A=a B=b Y=y\n.end\n";
        let err = parse(text, 6).unwrap_err();
        assert!(err.to_string().contains(".gate"), "{err}");
        let text = ".model m\n.subckt child x=a y=b\n.end\n";
        let err = parse(text, 6).unwrap_err();
        assert!(err.to_string().contains("flatten"), "{err}");
    }

    #[test]
    fn exdc_section_is_skipped() {
        let text = "\
.model m
.inputs a b
.outputs y
.names a b y
11 1
.exdc
.names a y
1 1
.end
";
        let n = parse(text, 6).expect("exdc section must not leak covers");
        assert_eq!(n.lut_count(), 1);
        // The exdc cover for `y` must not have replaced the care cover.
        let y = lut_of(&n, "y");
        assert_eq!(y.used_inputs(), 2);
    }

    #[test]
    fn dash_dont_care_expands() {
        let text = ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-1 1\n.end\n";
        let n = parse(text, 6).expect("parse");
        let (_, block) = n
            .iter_blocks()
            .find(|(_, b)| b.kind.is_lut())
            .expect("one lut");
        if let BlockKind::Lut { truth, .. } = &block.kind {
            // a=1, c=1 regardless of b.
            assert!(truth.evaluate(&[true, false, true, false, false, false]));
            assert!(truth.evaluate(&[true, true, true, false, false, false]));
            assert!(!truth.evaluate(&[false, true, true, false, false, false]));
        }
    }

    #[test]
    fn off_set_cover_is_complemented() {
        // y is 0 only for a=1,b=1: a NAND — not the constant-0 the old
        // parser produced from off-set covers.
        let text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let n = parse(text, 6).expect("parse");
        if let BlockKind::Lut { truth, .. } = &lut_of(&n, "y").kind {
            assert!(truth.evaluate(&[false, false, false, false, false, false]));
            assert!(truth.evaluate(&[true, false, false, false, false, false]));
            assert!(truth.evaluate(&[false, true, false, false, false, false]));
            assert!(!truth.evaluate(&[true, true, false, false, false, false]));
        }
    }

    #[test]
    fn off_set_cover_with_dont_cares() {
        // Off-set `1- 0`: y = 0 whenever a=1, so y = !a.
        let text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n1- 0\n.end\n";
        let n = parse(text, 6).expect("parse");
        if let BlockKind::Lut { truth, .. } = &lut_of(&n, "y").kind {
            assert!(truth.evaluate(&[false, false, false, false, false, false]));
            assert!(truth.evaluate(&[false, true, false, false, false, false]));
            assert!(!truth.evaluate(&[true, false, false, false, false, false]));
            assert!(!truth.evaluate(&[true, true, false, false, false, false]));
        }
    }

    #[test]
    fn mixed_polarity_cover_is_rejected() {
        let text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n";
        let err = parse(text, 6).unwrap_err();
        assert!(
            matches!(err, NetlistError::ParseBlif { line: 6, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("mixes"), "{err}");
    }

    #[test]
    fn duplicate_cover_drivers_are_rejected_with_both_lines() {
        let text = ".model m\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n";
        assert_eq!(
            parse(text, 6).unwrap_err(),
            NetlistError::DuplicateDriver {
                signal: "y".into(),
                first_line: 4,
                second_line: 6,
            }
        );
    }

    #[test]
    fn cover_colliding_with_primary_input_is_rejected() {
        let text = ".model m\n.inputs a b\n.outputs b\n.names a b\n1 1\n.end\n";
        assert_eq!(
            parse(text, 6).unwrap_err(),
            NetlistError::DuplicateDriver {
                signal: "b".into(),
                first_line: 2,
                second_line: 4,
            }
        );
    }

    #[test]
    fn latch_output_colliding_with_cover_is_rejected() {
        let text = "\
.model m
.inputs a b
.outputs q
.names a q
1 1
.names b d
1 1
.latch d q re clk 0
.end
";
        assert_eq!(
            parse(text, 6).unwrap_err(),
            NetlistError::DuplicateDriver {
                signal: "q".into(),
                first_line: 4,
                second_line: 8,
            }
        );
    }

    #[test]
    fn multi_fanout_latch_input_keeps_combinational_net() {
        // `d` feeds the latch *and* the cover for `z`: z must read the
        // combinational value, so `d` stays its own unregistered LUT and
        // the latch becomes a registered pass-through.
        let text = "\
.model m
.inputs a b
.outputs q z
.names a b d
11 1
.latch d q re clk 0
.names d b z
11 1
.end
";
        let n = parse(text, 6).expect("parse");
        assert_eq!(n.lut_count(), 3, "d, q (pass-through) and z");
        let d = lut_of(&n, "d");
        assert!(
            matches!(
                d.kind,
                BlockKind::Lut {
                    registered: false,
                    ..
                }
            ),
            "combinational net must stay unregistered"
        );
        let q = lut_of(&n, "q");
        assert!(matches!(
            q.kind,
            BlockKind::Lut {
                registered: true,
                ..
            }
        ));
        // z's slot-0 input must be the net driven by the combinational `d`
        // LUT, not the registered `q`.
        let z = lut_of(&n, "z");
        let z_source = z.inputs[0].expect("z input 0");
        assert_eq!(n.net(z_source).name, "d");
    }

    #[test]
    fn two_latches_may_share_one_input() {
        let text = "\
.model m
.inputs a
.outputs q1 q2
.names a d
1 1
.latch d q1 re clk 0
.latch d q2 re clk 0
.end
";
        let n = parse(text, 6).expect("parse");
        assert_eq!(n.lut_count(), 3, "d plus two pass-throughs");
    }

    #[test]
    fn latch_init_forms_parse_and_init_one_is_rejected() {
        // 3-token form with init 0 and 2.
        for init in ["0", "2", "3"] {
            let text = format!(".model m\n.inputs a\n.outputs q\n.latch a q {init}\n.end\n");
            parse(&text, 6).unwrap_or_else(|e| panic!("init {init}: {e}"));
        }
        // 5-token form.
        parse(
            ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n",
            6,
        )
        .expect("5-token form");
        // 4-token form (no init).
        parse(
            ".model m\n.inputs a\n.outputs q\n.latch a q fe clk\n.end\n",
            6,
        )
        .expect("4-token form");
        // init 1 is explicitly unsupported, not silently dropped.
        let err = parse(
            ".model m\n.inputs a\n.outputs q\n.latch a q re clk 1\n.end\n",
            6,
        )
        .unwrap_err();
        assert!(err.to_string().contains("initial state 1"), "{err}");
        let err = parse(".model m\n.inputs a\n.outputs q\n.latch a q 1\n.end\n", 6).unwrap_err();
        assert!(err.to_string().contains("initial state 1"), "{err}");
    }

    #[test]
    fn malformed_latch_token_counts_are_rejected() {
        let err = parse(".model m\n.inputs a\n.outputs q\n.latch a\n.end\n", 6).unwrap_err();
        assert!(matches!(err, NetlistError::ParseBlif { line: 4, .. }));
        let err = parse(
            ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0 extra\n.end\n",
            6,
        )
        .unwrap_err();
        assert!(err.to_string().contains("2 to 5"), "{err}");
        let err = parse(
            ".model m\n.inputs a\n.outputs q\n.latch a q zz clk 0\n.end\n",
            6,
        )
        .unwrap_err();
        assert!(err.to_string().contains("trigger type"), "{err}");
    }

    #[test]
    fn registered_feedback_parses() {
        // A toggle register: d = !q, q = reg(d). The cover reads the latch
        // output its own output feeds — legal sequential logic.
        let text = "\
.model toggle
.inputs en
.outputs q
.names en q d
10 1
01 1
.latch d q re clk 0
.end
";
        let n = parse(text, 6).expect("registered feedback must parse");
        assert_eq!(n.lut_count(), 1);
        let q = lut_of(&n, "q");
        assert!(matches!(
            q.kind,
            BlockKind::Lut {
                registered: true,
                ..
            }
        ));
    }

    #[test]
    fn combinational_cycles_are_rejected() {
        let text = "\
.model loop
.inputs a
.outputs y
.names a z y
11 1
.names y z
1 1
.end
";
        let err = parse(text, 6).unwrap_err();
        assert!(err.to_string().contains("combinational cycle"), "{err}");
    }

    #[test]
    fn pi_fed_latch_gets_pass_through_lut() {
        let text = ".model m\n.inputs d\n.outputs q\n.latch d q re clk 0\n.end\n";
        let n = parse(text, 6).expect("parse");
        assert_eq!(n.lut_count(), 1);
        let q = lut_of(&n, "q");
        assert!(matches!(
            q.kind,
            BlockKind::Lut {
                registered: true,
                ..
            }
        ));
        let source = q.inputs[0].expect("pass-through input");
        assert_eq!(n.net(source).name, "d");
    }

    #[test]
    fn write_then_parse_roundtrips_connectivity() {
        let original = SyntheticSpec::new("rt", 40, 6, 5)
            .with_seed(11)
            .build()
            .expect("generate");
        let text = write(&original);
        let reparsed = parse(&text, 6).expect("reparse");
        assert_eq!(reparsed.lut_count(), original.lut_count());
        assert_eq!(reparsed.input_count(), original.input_count());
        assert_eq!(reparsed.output_count(), original.output_count());
    }

    #[test]
    fn write_emits_no_trailing_spaces_or_duplicate_outputs() {
        // Two pads on one net: the duplicate must become a buffer, and no
        // line may carry trailing whitespace.
        let mut n = Netlist::new("pads", 6);
        let (_, a) = n.add_input("a");
        let xor = TruthTable::from_fn(1, |i| i == 1).widen(6);
        let (_, y) = n.add_lut("y", xor, &[a], false);
        n.add_output("p0", y);
        n.add_output("p1", y);
        let text = write(&n);
        assert!(text.contains(".outputs y p1\n"), "{text}");
        assert!(text.contains(".names y p1\n1 1\n"), "{text}");
        for line in text.lines() {
            assert_eq!(line, line.trim_end(), "trailing space in `{line}`");
        }
        let reparsed = parse(&text, 6).expect("reparse");
        assert_eq!(reparsed.output_count(), 2);
        assert_eq!(reparsed.lut_count(), 2, "buffer LUT materialized");
        // And the second trip is byte-stable.
        assert_eq!(write(&parse(&text, 6).unwrap()), text);
    }

    #[test]
    fn write_handles_empty_io_lists() {
        let mut n = Netlist::new("consts", 6);
        let one = TruthTable::from_fn(0, |_| true).widen(6);
        n.add_lut("k1", one, &[], false);
        let text = write(&n);
        assert!(text.contains(".inputs\n"), "{text}");
        assert!(text.contains(".outputs\n"), "{text}");
        let reparsed = parse(&text, 6).expect("reparse");
        assert_eq!(reparsed.lut_count(), 1);
    }

    #[test]
    fn continuation_lines_are_joined() {
        let text = ".model m\n.inputs a \\\n b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let n = parse(text, 6).expect("parse");
        assert_eq!(n.input_count(), 2);
    }

    #[test]
    fn multiple_models_are_rejected() {
        let text = ".model a\n.end\n.model b\n.end\n";
        // The first `.end` terminates parsing, so a second model after it
        // is simply ignored.
        parse(text, 6).expect("text after .end is ignored");
        let text = ".model a\n.model b\n.end\n";
        let err = parse(text, 6).unwrap_err();
        assert!(err.to_string().contains("multiple"), "{err}");
    }
}
