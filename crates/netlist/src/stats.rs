//! Netlist statistics used for reporting and generator calibration.

use crate::model::{BlockKind, Netlist};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Circuit name.
    pub name: String,
    /// Number of LUT blocks.
    pub luts: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of registered LUTs.
    pub registered: usize,
    /// Average LUT fan-in.
    pub mean_fanin: f64,
    /// Average net fanout.
    pub mean_fanout: f64,
    /// Largest net fanout.
    pub max_fanout: usize,
    /// Total number of pin-to-pin connections (sum of fanouts).
    pub pin_connections: usize,
}

impl NetlistStats {
    /// Computes the statistics of `netlist`.
    pub fn of(netlist: &Netlist) -> Self {
        let mut fanin_total = 0usize;
        let mut registered = 0usize;
        for (_, block) in netlist.iter_blocks() {
            if let BlockKind::Lut { registered: r, .. } = &block.kind {
                fanin_total += block.used_inputs();
                if *r {
                    registered += 1;
                }
            }
        }
        let luts = netlist.lut_count();
        let mut fanout_total = 0usize;
        let mut max_fanout = 0usize;
        for (_, net) in netlist.iter_nets() {
            fanout_total += net.fanout();
            max_fanout = max_fanout.max(net.fanout());
        }
        let nets = netlist.net_count();
        NetlistStats {
            name: netlist.name().to_string(),
            luts,
            inputs: netlist.input_count(),
            outputs: netlist.output_count(),
            nets,
            registered,
            mean_fanin: if luts > 0 {
                fanin_total as f64 / luts as f64
            } else {
                0.0
            },
            mean_fanout: if nets > 0 {
                fanout_total as f64 / nets as f64
            } else {
                0.0
            },
            max_fanout,
            pin_connections: fanout_total,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LUTs ({} registered), {} PIs, {} POs, {} nets, mean fanin {:.2}, mean fanout {:.2}, max fanout {}",
            self.name,
            self.luts,
            self.registered,
            self.inputs,
            self.outputs,
            self.nets,
            self.mean_fanin,
            self.mean_fanout,
            self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::SyntheticSpec;

    #[test]
    fn stats_are_consistent_with_the_netlist() {
        let n = SyntheticSpec::new("stats", 150, 12, 10)
            .with_seed(2)
            .build()
            .unwrap();
        let s = NetlistStats::of(&n);
        assert_eq!(s.luts, 150);
        assert_eq!(s.inputs, 12);
        assert_eq!(s.outputs, 10);
        assert_eq!(s.nets, 150 + 12);
        assert!(s.mean_fanin >= 2.0 && s.mean_fanin <= 6.0);
        assert!(s.mean_fanout > 0.0);
        assert!(s.max_fanout >= 1);
        assert!(s.registered <= s.luts);
        let text = s.to_string();
        assert!(text.contains("150 LUTs"));
    }

    #[test]
    fn empty_lut_count_does_not_divide_by_zero() {
        let mut n = Netlist::new("ios_only", 6);
        let (_, a) = n.add_input("a");
        n.add_output("y", a);
        let s = NetlistStats::of(&n);
        assert_eq!(s.luts, 0);
        assert_eq!(s.mean_fanin, 0.0);
    }
}
