//! LUT-mapped netlist model for the VBS reproduction flow.
//!
//! The Virtual Bit-Stream design flow (Section III of the paper) consumes a
//! hardware task that has already been synthesized and technology-mapped to
//! `K`-input LUTs. This crate provides:
//!
//! * the [`Netlist`] data model — LUT blocks, I/O pads, nets and pins — which
//!   the packer, placer, router and bit-stream generators operate on;
//! * a BLIF-subset reader and writer ([`blif`]) so externally mapped circuits
//!   can be imported;
//! * a deterministic **synthetic benchmark generator** ([`generate`]) and the
//!   [`mcnc`] module, which instantiates the 20 MCNC circuits of Table II of
//!   the paper (same logic-block count, same array size, same normalized
//!   channel width) as synthetic equivalents — the original MCNC netlists are
//!   not redistributable, and the compression results only depend on routing
//!   density, which the generator is calibrated to reproduce.
//!
//! # Example
//!
//! ```
//! use vbs_netlist::{generate::SyntheticSpec, mcnc};
//!
//! # fn main() -> Result<(), vbs_netlist::NetlistError> {
//! // A small random circuit.
//! let netlist = SyntheticSpec::new("demo", 64, 8, 8).with_seed(7).build()?;
//! assert_eq!(netlist.lut_count(), 64);
//! netlist.validate()?;
//!
//! // The paper's benchmark set.
//! assert_eq!(mcnc::TABLE2.len(), 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod ids;
mod lut;
mod model;

pub mod blif;
pub mod generate;
pub mod mcnc;
pub mod stats;

pub use error::NetlistError;
pub use ids::{BlockId, NetId};
pub use lut::TruthTable;
pub use model::{Block, BlockKind, Net, Netlist, PinRef};
