use crate::ids::{BlockId, NetId};
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A block name was used twice.
    DuplicateBlockName {
        /// The conflicting name.
        name: String,
    },
    /// A net name was used twice.
    DuplicateNetName {
        /// The conflicting name.
        name: String,
    },
    /// A net has more than one driver.
    MultipleDrivers {
        /// The net with multiple drivers.
        net: NetId,
    },
    /// A net has no driver.
    UndrivenNet {
        /// The undriven net.
        net: NetId,
    },
    /// A block references a net that does not exist.
    DanglingNet {
        /// The referencing block.
        block: BlockId,
    },
    /// A LUT uses more inputs than the architecture allows.
    TooManyInputs {
        /// The offending block.
        block: BlockId,
        /// Number of inputs used.
        used: usize,
        /// Maximum allowed (`K`).
        max: usize,
    },
    /// An identifier is out of range for this netlist.
    UnknownBlock {
        /// The unknown block id.
        block: BlockId,
    },
    /// An identifier is out of range for this netlist.
    UnknownNet {
        /// The unknown net id.
        net: NetId,
    },
    /// The synthetic generator was given impossible parameters.
    InvalidGeneratorSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// A BLIF file could not be parsed.
    ParseBlif {
        /// Line number (1-based) where the problem was found.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// Two BLIF constructs drive the same signal (two `.names` covers, a
    /// cover colliding with a latch output, or either colliding with a
    /// primary input).
    DuplicateDriver {
        /// The signal with two drivers.
        signal: String,
        /// Line (1-based) of the first driver.
        first_line: usize,
        /// Line (1-based) of the conflicting driver.
        second_line: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateBlockName { name } => {
                write!(f, "duplicate block name `{name}`")
            }
            NetlistError::DuplicateNetName { name } => write!(f, "duplicate net name `{name}`"),
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net {net:?} has more than one driver")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net {net:?} has no driver"),
            NetlistError::DanglingNet { block } => {
                write!(f, "block {block:?} references a net that does not exist")
            }
            NetlistError::TooManyInputs { block, used, max } => write!(
                f,
                "block {block:?} uses {used} inputs, more than the {max} allowed"
            ),
            NetlistError::UnknownBlock { block } => write!(f, "unknown block {block:?}"),
            NetlistError::UnknownNet { net } => write!(f, "unknown net {net:?}"),
            NetlistError::InvalidGeneratorSpec { reason } => {
                write!(f, "invalid synthetic circuit specification: {reason}")
            }
            NetlistError::ParseBlif { line, reason } => {
                write!(f, "blif parse error at line {line}: {reason}")
            }
            NetlistError::DuplicateDriver {
                signal,
                first_line,
                second_line,
            } => write!(
                f,
                "signal `{signal}` has two drivers: lines {first_line} and {second_line}"
            ),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
        let e = NetlistError::ParseBlif {
            line: 12,
            reason: "unexpected token".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }
}
