//! `vbs-repro` — reproduction of *"Design Flow and Run-Time Management for
//! Compressed FPGA Configurations"* (Huriaux, Courtay, Sentieys — DATE 2015).
//!
//! This facade crate re-exports the whole workspace so the examples,
//! integration tests and downstream users can depend on one crate:
//!
//! * [`arch`] — island-style FPGA architecture model (macros, Equation (1));
//! * [`netlist`] — LUT netlists, BLIF subset, MCNC-calibrated generator;
//! * [`place`] / [`route`] — the VPR-role substrates (annealing placement,
//!   PathFinder routing, minimum channel width search);
//! * [`bitstream`] — raw configuration frames and the device config memory;
//! * [`vbs`] — the Virtual Bit-Stream format, encoder and decoder (the
//!   paper's contribution);
//! * [`runtime`] — the run-time reconfiguration controller and task manager;
//! * [`sched`] — the on-line scheduler: request queue, eviction,
//!   defragmentation, decode cache and the trace-driven simulator;
//! * [`telemetry`] — zero-allocation tracing spans, latency histograms and
//!   the pipeline event timeline, with JSON / table / Perfetto exporters;
//! * [`fabric_sim`] — functional verification of configurations;
//! * [`flow`] — the end-to-end CAD flow driver.
//!
//! # Quickstart
//!
//! ```
//! use vbs_repro::flow::CadFlow;
//! use vbs_repro::netlist::generate::SyntheticSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = SyntheticSpec::new("hello", 24, 5, 5).with_seed(1).build()?;
//! let result = CadFlow::new(8, 6)?.with_grid(7, 7).with_seed(1).fast().run(&netlist)?;
//! let vbs = result.vbs(1)?;
//! println!("raw {} bits, VBS {} bits", result.raw_bitstream().size_bits(), vbs.size_bits());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vbs_arch as arch;
pub use vbs_bitstream as bitstream;
pub use vbs_core as vbs;
pub use vbs_fabric_sim as fabric_sim;
pub use vbs_flow as flow;
pub use vbs_netlist as netlist;
pub use vbs_place as place;
pub use vbs_route as route;
pub use vbs_runtime as runtime;
pub use vbs_sched as sched;
pub use vbs_telemetry as telemetry;
