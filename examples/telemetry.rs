//! Observability end to end: replay a bursty trace through a two-fabric
//! fleet with a shared telemetry registry installed, then export what the
//! pipeline did — a human-readable latency summary per stage on stdout, a
//! machine-readable metrics snapshot, and a `chrome://tracing` / Perfetto
//! trace with one track per decode lane and one process per fabric.
//!
//! Run with: `cargo run --release --example telemetry [-- OUT_DIR]`
//!
//! Open `telemetry_trace.json` at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) to see queue waits, per-lane decode spans, frame
//! writes, compaction pauses and cross-fabric migrations on one timeline.

use vbs_repro::arch::{ArchSpec, Device};
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::runtime::{BestFit, ReconfigurationController, TaskManager, VbsRepository};
use vbs_repro::sched::{
    replay_multi, LeastLoaded, LruEviction, MultiConfig, MultiFabricScheduler, Scheduler,
    SchedulerConfig, Trace, WorkloadSpec,
};
use vbs_repro::telemetry::export::{chrome_trace, metrics_json, summary_table};
use vbs_repro::telemetry::Telemetry;

const CHANNEL_WIDTH: u16 = 9;
const LUT_SIZE: u8 = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());

    // Offline: implement four differently-sized tasks and store their VBS.
    let mut repository = VbsRepository::new();
    for (name, luts, edge, seed) in [
        ("fir_filter", 9usize, 4u16, 21u64),
        ("crc_engine", 8, 4, 22),
        ("aes_round", 16, 5, 23),
        ("fft_stage", 24, 6, 24),
    ] {
        let netlist = SyntheticSpec::new(name, luts, 3, 3)
            .with_seed(seed)
            .build()?;
        let result = CadFlow::new(CHANNEL_WIDTH, LUT_SIZE)?
            .with_grid(edge, edge)
            .with_seed(seed)
            .fast()
            .run(&netlist)?;
        repository.store(name, &result.vbs(1)?);
    }

    // A two-fabric fleet under a deterministic 500-load burst, compaction
    // on — every pipeline stage gets exercised.
    let fabric = |w, h| -> Result<Scheduler, Box<dyn std::error::Error>> {
        let device = Device::new(ArchSpec::new(CHANNEL_WIDTH, LUT_SIZE)?, w, h)?;
        let manager = TaskManager::new(ReconfigurationController::new(device), repository.clone())
            .with_policy(Box::new(BestFit));
        Ok(Scheduler::with_config(
            manager,
            Box::new(LruEviction),
            SchedulerConfig {
                eviction_limit: 1,
                compaction: true,
                ..SchedulerConfig::default()
            },
        ))
    };
    let mut fleet = MultiFabricScheduler::new(
        vec![fabric(11, 11)?, fabric(9, 9)?],
        Box::new(LeastLoaded),
        MultiConfig::default(),
    );

    // One shared registry for the whole fleet: the dispatcher tags its
    // events with the fleet fabric, each scheduler and its decode lanes
    // with the fabric's index.
    let telemetry = Telemetry::new();
    fleet.set_telemetry(telemetry.clone());

    let trace = Trace::synthetic(&WorkloadSpec {
        tasks: vec![
            "fir_filter".into(),
            "crc_engine".into(),
            "aes_round".into(),
            "fft_stage".into(),
        ],
        loads: 500,
        mean_interarrival: 2,
        mean_duration: 20,
        priority_levels: 4,
        deadline_slack: None,
        seed: 2015,
    });
    println!("replaying {} events over 2 fabrics\n", trace.len());
    let report = replay_multi(&mut fleet, &trace);
    println!("{report}");

    // Exporters: the latency summary for humans, the snapshot for scripts,
    // the trace-event JSON for the Perfetto timeline.
    println!("{}", summary_table(&telemetry));

    let metrics_path = format!("{out_dir}/telemetry_metrics.json");
    std::fs::write(&metrics_path, metrics_json(&telemetry))?;
    let trace_path = format!("{out_dir}/telemetry_trace.json");
    std::fs::write(&trace_path, chrome_trace(&telemetry))?;
    println!("wrote {metrics_path} and {trace_path} (open the trace at https://ui.perfetto.dev)");
    Ok(())
}
