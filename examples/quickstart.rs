//! Quickstart: run the whole design flow on a small circuit and compare the
//! raw bit-stream with the Virtual Bit-Stream, then de-virtualize it back.
//!
//! Run with: `cargo run --release --example quickstart`

use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::vbs::{decode, VbsStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A technology-mapped hardware task (60 six-input LUTs).
    let netlist = SyntheticSpec::new("quickstart", 60, 8, 8)
        .with_seed(42)
        .build()?;
    println!(
        "circuit: {}",
        vbs_repro::netlist::stats::NetlistStats::of(&netlist)
    );

    // 2. The offline CAD flow: pack, place, route at W = 20 (the paper's
    //    normalized channel width), generate the raw bit-stream.
    let result = CadFlow::paper_evaluation()
        .with_seed(42)
        .fast()
        .run(&netlist)?;
    let raw = result.raw_bitstream();
    println!(
        "placed and routed on a {}x{} fabric in {} router iterations",
        result.device().width(),
        result.device().height(),
        result.routing().iterations()
    );
    println!("raw bit-stream: {} bits", raw.size_bits());

    // 3. Virtual Bit-Stream at the finest grain and with 2x2 clusters.
    for cluster in [1u16, 2] {
        let vbs = result.vbs(cluster)?;
        let stats = VbsStats::of(&vbs);
        println!("  {stats}");
    }

    // 4. De-virtualize the finest-grain stream and check it reproduces the
    //    raw configuration bit for bit.
    let vbs = result.vbs(1)?;
    let decoded = decode(&vbs)?;
    assert_eq!(decoded.diff_count(raw)?, 0);
    println!("de-virtualized configuration matches the raw bit-stream exactly");
    Ok(())
}
