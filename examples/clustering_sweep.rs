//! Cluster-size sweep on one MCNC-calibrated benchmark: the Figure 5
//! experiment on a single circuit, showing the size/decoding-effort
//! trade-off of Section IV-B.
//!
//! Run with: `cargo run --release --example clustering_sweep [circuit] [scale]`

use vbs_repro::runtime::ReconfigurationController;
use vbs_repro::vbs::VbsStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("dsip");
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.15);

    let circuit = vbs_repro::netlist::mcnc::by_name(name)
        .ok_or_else(|| format!("unknown MCNC circuit `{name}`"))?;
    println!(
        "circuit {} (scale {scale}): {} LBs on a {}x{} array in the paper",
        circuit.name, circuit.logic_blocks, circuit.size, circuit.size
    );

    let netlist = circuit.build_scaled(scale)?;
    let edge = circuit.scaled_size(scale);
    let flow = vbs_repro::flow::CadFlow::paper_evaluation()
        .with_grid(edge, edge)
        .with_seed(circuit.seed())
        .fast();
    let result = flow.run(&netlist)?;
    println!(
        "raw bit-stream: {} bits ({} macros x {} bits)",
        result.raw_bitstream().size_bits(),
        result.raw_bitstream().macro_count(),
        result.device().spec().raw_bits_per_macro()
    );

    println!(
        "\n{:>7} {:>12} {:>9} {:>9} {:>12} {:>14}",
        "cluster", "VBS (bits)", "ratio", "factor", "connections", "decode (us)"
    );
    for k in [1u16, 2, 3, 4, 6] {
        if k > edge {
            break;
        }
        let vbs = result.vbs(k)?;
        let stats = VbsStats::of(&vbs);
        let controller = ReconfigurationController::new(result.device().clone());
        let (_, report) = controller.devirtualize(&vbs)?;
        println!(
            "{:>7} {:>12} {:>8.1}% {:>8.2}x {:>12} {:>14}",
            k,
            stats.vbs_bits,
            100.0 * stats.ratio(),
            stats.factor(),
            stats.connections,
            report.micros
        );
    }
    Ok(())
}
