//! The on-line reconfiguration scheduler under load: four compressed tasks
//! contend for a fabric too small to hold them all, driven by a seeded
//! synthetic trace. The same workload runs twice — plain first-fit with no
//! defragmentation vs best-fit with compaction — to show how placement
//! policy and run-time relocation (the paper's head-line capability) buy
//! acceptance rate under pressure.
//!
//! Run with: `cargo run --release --example scheduler`

use vbs_repro::arch::{ArchSpec, Device};
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::runtime::{
    BestFit, FirstFit, PlacementPolicy, ReconfigurationController, TaskManager, VbsRepository,
};
use vbs_repro::sched::{replay, LruEviction, Scheduler, SchedulerConfig, Trace, WorkloadSpec};

const CHANNEL_WIDTH: u16 = 9;
const LUT_SIZE: u8 = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: implement four differently-sized tasks and store their VBS.
    let mut repository = VbsRepository::new();
    for (name, luts, edge, seed) in [
        ("fir_filter", 9usize, 4u16, 21u64),
        ("crc_engine", 8, 4, 22),
        ("aes_round", 16, 5, 23),
        ("fft_stage", 24, 6, 24),
    ] {
        let netlist = SyntheticSpec::new(name, luts, 3, 3)
            .with_seed(seed)
            .build()?;
        let result = CadFlow::new(CHANNEL_WIDTH, LUT_SIZE)?
            .with_grid(edge, edge)
            .with_seed(seed)
            .fast()
            .run(&netlist)?;
        let vbs = result.vbs(1)?;
        let bytes = repository.store(name, &vbs);
        println!(
            "{name:<12} {}x{} macros, VBS {bytes} bytes ({}% of raw)",
            vbs.width(),
            vbs.height(),
            100 * vbs.size_bits() / result.raw_bitstream().size_bits()
        );
    }

    // A deterministic burst of 120 arrivals (240 events) on an 11x11 fabric.
    let trace = Trace::synthetic(&WorkloadSpec {
        tasks: vec![
            "fir_filter".into(),
            "crc_engine".into(),
            "aes_round".into(),
            "fft_stage".into(),
        ],
        loads: 120,
        mean_interarrival: 3,
        mean_duration: 24,
        priority_levels: 4,
        deadline_slack: None,
        seed: 2015,
    });
    println!("\nreplaying {} events on an 11x11 fabric\n", trace.len());

    for (label, policy, compaction) in [
        (
            "first-fit, no compaction",
            Box::new(FirstFit) as Box<dyn PlacementPolicy>,
            false,
        ),
        ("best-fit + compaction", Box::new(BestFit), true),
    ] {
        let device = Device::new(ArchSpec::new(CHANNEL_WIDTH, LUT_SIZE)?, 11, 11)?;
        let manager = TaskManager::new(ReconfigurationController::new(device), repository.clone())
            .with_policy(policy);
        let mut scheduler = Scheduler::with_config(
            manager,
            Box::new(LruEviction),
            SchedulerConfig {
                eviction_limit: 1,
                compaction,
                ..SchedulerConfig::default()
            },
        );
        let report = replay(&mut scheduler, &trace);
        println!("== {label} ==\n{report}");
    }
    Ok(())
}
