//! Multi-task run-time management: several compressed tasks stored in the
//! external memory, loaded, evicted and relocated on one fabric by the task
//! manager — the dynamic partial reconfiguration scenario that motivates the
//! paper's introduction.
//!
//! Run with: `cargo run --release --example multi_task`

use vbs_repro::arch::{ArchSpec, Device};
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::runtime::{ReconfigurationController, RuntimeError, TaskManager, VbsRepository};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: implement three differently-sized tasks and store their VBS.
    let mut repository = VbsRepository::new();
    for (name, luts, grid, seed) in [
        ("fir_filter", 40, 8u16, 1u64),
        ("crc_engine", 24, 6, 2),
        ("huffman", 56, 9, 3),
    ] {
        let netlist = SyntheticSpec::new(name, luts, 6, 6)
            .with_seed(seed)
            .build()?;
        let result = CadFlow::new(10, 6)?
            .with_grid(grid, grid)
            .with_seed(seed)
            .fast()
            .run(&netlist)?;
        let vbs = result.vbs(1)?;
        let bytes = repository.store(name, &vbs);
        println!(
            "{name:<12} {}x{} macros, VBS {bytes} bytes ({}% of raw)",
            vbs.width(),
            vbs.height(),
            100 * vbs.size_bits() / result.raw_bitstream().size_bits()
        );
    }

    // Run time: a 26x12 fabric managed dynamically.
    let device = Device::new(ArchSpec::new(10, 6)?, 26, 12)?;
    let mut manager = TaskManager::new(
        ReconfigurationController::new(device).with_workers(2),
        repository,
    );

    let fir = manager.load("fir_filter")?;
    let crc = manager.load("crc_engine")?;
    let huff = manager.load("huffman")?;
    println!("\nloaded {} tasks:", manager.loaded_tasks().len());
    for task in manager.loaded_tasks() {
        println!("  {:<12} at {}", task.name, task.region);
    }

    // Evict the CRC engine and load a fresh instance into the 6x6 hole it
    // left (the first-fit scan lands exactly there).
    manager.unload(crc)?;
    let crc2 = manager.load("crc_engine")?;
    println!("\nafter evicting crc_engine and loading a second crc_engine:");
    for task in manager.loaded_tasks() {
        println!("  {:<12} at {}", task.name, task.region);
    }

    // Keep loading until the fabric is full, then report the clean error.
    loop {
        match manager.load("huffman") {
            Ok(_) => {}
            Err(RuntimeError::NoFreeRegion { width, height }) => {
                println!("\nfabric full: no free {width}x{height} region left");
                break;
            }
            Err(other) => return Err(other.into()),
        }
    }
    let _ = (fir, huff, crc2);
    println!("{} tasks resident at the end", manager.loaded_tasks().len());

    // Every decode above ran on the controller's 2 pooled lanes: scratches
    // and staging buffers recycle instead of being allocated per load.
    let pool = manager.controller().scratch_pool().stats();
    println!(
        "decode pool: {} buffer reuses, {} fresh buffers, {} fresh scratches",
        pool.reused, pool.fresh, pool.scratch_fresh
    );
    Ok(())
}
