//! Run-time relocation: one Virtual Bit-Stream, loaded at several positions
//! of a larger fabric by the reconfiguration controller, and verified to
//! implement the original circuit at every position.
//!
//! This exercises the head-line capability of the paper: the VBS is
//! abstracted from its final position, so the same stream relocates without
//! any offline re-implementation.
//!
//! Run with: `cargo run --release --example relocation`

use vbs_repro::arch::{ArchSpec, Coord, Device, Rect};
use vbs_repro::fabric_sim::verify_against_netlist;
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::runtime::{ReconfigurationController, TaskManager, VbsRepository};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Implement a task once, offline.
    let netlist = SyntheticSpec::new("relocatable", 30, 6, 6)
        .with_seed(7)
        .build()?;
    let result = CadFlow::new(12, 6)?
        .with_grid(7, 7)
        .with_seed(7)
        .fast()
        .run(&netlist)?;
    let vbs = result.vbs(1)?;
    println!(
        "task footprint {}x{}, VBS {} bits ({}% of raw)",
        vbs.width(),
        vbs.height(),
        vbs.size_bits(),
        100 * vbs.size_bits() / result.raw_bitstream().size_bits()
    );

    // A larger device managed at run time.
    let device = Device::new(ArchSpec::new(12, 6)?, 24, 16)?;
    let mut repository = VbsRepository::new();
    repository.store("relocatable", &vbs);
    let mut manager = TaskManager::new(
        ReconfigurationController::new(device).with_workers(4),
        repository,
    );

    // Load the same stream at three different positions.
    for origin in [Coord::new(0, 0), Coord::new(9, 3), Coord::new(16, 8)] {
        let handle = manager.load_at("relocatable", origin)?;
        let region = Rect::new(origin, vbs.width(), vbs.height());
        let readback = manager.controller().memory().read_region(region)?;
        // The decoded configuration at this position still implements the
        // original netlist (connectivity + logic checked from the bits).
        verify_against_netlist(&readback, &netlist, result.placement())?;
        println!("loaded at {origin} (handle {handle:?}) and verified");
    }

    // Relocate the first instance somewhere else at run time — a pure bulk
    // move of the configured frames; the compressed stream is not consulted.
    let first = manager.loaded_tasks()[0].handle;
    manager.relocate(first, Coord::new(0, 9))?;
    println!(
        "relocated the first instance to (0, 9); {} tasks loaded",
        manager.loaded_tasks().len()
    );

    // The three loads decoded on 4 pooled lanes sharing one ScratchPool;
    // after the first load, buffers and scratches recycle.
    let pool = manager.controller().scratch_pool().stats();
    println!(
        "decode pool: {} buffer reuses, {} fresh buffers, {} fresh scratches",
        pool.reused, pool.fresh, pool.scratch_fresh
    );
    Ok(())
}
