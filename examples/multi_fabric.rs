//! Multi-fabric scheduling: one overloaded request stream sharded across a
//! fleet of four devices. The same workload runs three ways — one fabric
//! alone, four independent fabrics each facing the full stream, and the
//! four-fabric `MultiFabricScheduler` with cache-affinity sharding, a
//! decode pipeline that overlaps de-virtualization with config-memory
//! writes, and cross-fabric migration of capacity-rejected loads.
//!
//! Run with: `cargo run --release --example multi_fabric`

use vbs_repro::arch::{ArchSpec, Device};
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::runtime::{
    BestFit, FabricId, ReconfigurationController, TaskManager, VbsRepository,
};
use vbs_repro::sched::{
    replay, replay_multi, CacheAffinity, LruEviction, MultiConfig, MultiFabricScheduler, Scheduler,
    SchedulerConfig, Trace, WorkloadSpec,
};

const CHANNEL_WIDTH: u16 = 9;
const LUT_SIZE: u8 = 6;
const FABRIC: (u16, u16) = (11, 11);

fn scheduler(
    repository: &VbsRepository,
    fabric: u32,
) -> Result<Scheduler, Box<dyn std::error::Error>> {
    let device = Device::new(ArchSpec::new(CHANNEL_WIDTH, LUT_SIZE)?, FABRIC.0, FABRIC.1)?;
    let manager = TaskManager::new(ReconfigurationController::new(device), repository.clone())
        .with_policy(Box::new(BestFit))
        .with_fabric_id(FabricId(fabric));
    Ok(Scheduler::with_config(
        manager,
        Box::new(LruEviction),
        SchedulerConfig {
            eviction_limit: 1,
            compaction: true,
            ..SchedulerConfig::default()
        },
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: implement four differently-sized tasks and store their VBS.
    let mut repository = VbsRepository::new();
    for (name, luts, edge, seed) in [
        ("fir_filter", 9usize, 4u16, 21u64),
        ("crc_engine", 8, 4, 22),
        ("aes_round", 16, 5, 23),
        ("fft_stage", 24, 6, 24),
    ] {
        let netlist = SyntheticSpec::new(name, luts, 3, 3)
            .with_seed(seed)
            .build()?;
        let result = CadFlow::new(CHANNEL_WIDTH, LUT_SIZE)?
            .with_grid(edge, edge)
            .with_seed(seed)
            .fast()
            .run(&netlist)?;
        repository.store(name, &result.vbs(1)?);
    }

    // A deterministic burst of 200 arrivals, far too much for one device.
    let trace = Trace::synthetic(&WorkloadSpec {
        tasks: vec![
            "fir_filter".into(),
            "crc_engine".into(),
            "aes_round".into(),
            "fft_stage".into(),
        ],
        loads: 200,
        mean_interarrival: 2,
        mean_duration: 30,
        priority_levels: 4,
        deadline_slack: None,
        seed: 2015,
    });
    println!(
        "replaying {} events on {}x{} fabrics\n",
        trace.len(),
        FABRIC.0,
        FABRIC.1
    );

    // One fabric alone.
    let mut single = scheduler(&repository, 0)?;
    let single_report = replay(&mut single, &trace);
    println!(
        "one fabric               {:>5.1}% acceptance",
        100.0 * single_report.acceptance_rate()
    );

    // Four independent fabrics, each replaying the full stream.
    let mut accepted = 0;
    let mut submitted = 0;
    for i in 0..4 {
        let mut solo = scheduler(&repository, i)?;
        let report = replay(&mut solo, &trace);
        accepted += report.sched.loads_accepted;
        submitted += report.sched.loads_submitted;
    }
    println!(
        "4 independent fabrics    {:>5.1}% aggregate acceptance",
        100.0 * accepted as f64 / submitted as f64
    );

    // The sharded fleet: cache-affinity routing + decode pipeline +
    // cross-fabric migration.
    let fabrics = (0..4)
        .map(|i| scheduler(&repository, i))
        .collect::<Result<Vec<_>, _>>()?;
    let mut fleet =
        MultiFabricScheduler::new(fabrics, Box::new(CacheAffinity), MultiConfig::default());
    let report = replay_multi(&mut fleet, &trace);
    println!(
        "sharded fleet of 4       {:>5.1}% acceptance, {} migrations, {} staged decodes\n",
        100.0 * report.acceptance_rate(),
        report.multi.migrations,
        report.multi.staged_decodes
    );
    println!("{report}");
    Ok(())
}
