//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use std::sync::OnceLock;
use vbs_repro::arch::{ArchSpec, Coord, Device, MacroIo, Side};
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::netlist::TruthTable;
use vbs_repro::runtime::{
    BestFit, BottomLeftSkyline, FirstFit, PlacementPolicy, ReconfigurationController, TaskManager,
    VbsRepository,
};
use vbs_repro::sched::{
    LruEviction, Outcome, PriorityEviction, Request, Scheduler, SchedulerConfig,
};
use vbs_repro::vbs::bitio::{BitReader, BitWriter};
use vbs_repro::vbs::{ClusterIo, Vbs};

/// Two small tasks used by the scheduler sequence property, built through
/// the CAD flow once per test binary.
fn sched_repository() -> &'static VbsRepository {
    static REPO: OnceLock<VbsRepository> = OnceLock::new();
    REPO.get_or_init(|| {
        let mut repo = VbsRepository::new();
        for (name, luts, edge, seed) in [("tiny", 5usize, 3u16, 31u64), ("small", 9, 4, 32)] {
            let netlist = SyntheticSpec::new(name, luts, 2, 2)
                .with_seed(seed)
                .build()
                .expect("netlist generation");
            let result = CadFlow::new(9, 6)
                .expect("flow")
                .with_grid(edge, edge)
                .with_seed(seed)
                .fast()
                .run(&netlist)
                .expect("cad flow");
            repo.store(name, &result.vbs(1).expect("encode"));
        }
        repo
    })
}

/// Asserts the scheduler's fabric invariants: loaded regions are pairwise
/// disjoint, in bounds, and the configuration memory is blank outside them.
fn assert_fabric_invariants(sched: &Scheduler) {
    let manager = sched.manager();
    let device = manager.controller().device();
    let tasks = manager.loaded_tasks();
    for (i, a) in tasks.iter().enumerate() {
        assert!(
            a.region.origin.x as u32 + a.region.width as u32 <= device.width() as u32
                && a.region.origin.y as u32 + a.region.height as u32 <= device.height() as u32,
            "region {} out of bounds",
            a.region
        );
        for b in tasks.iter().skip(i + 1) {
            assert!(
                !a.region.intersects(&b.region),
                "regions {} and {} overlap",
                a.region,
                b.region
            );
        }
    }
    for y in 0..device.height() {
        for x in 0..device.width() {
            let at = Coord::new(x, y);
            if !tasks.iter().any(|t| t.region.contains(at)) {
                assert!(
                    manager.controller().memory().frame(at).is_empty(),
                    "macro {at} configured outside any loaded region"
                );
            }
        }
    }
}

proptest! {
    /// Bit-level serialization is lossless for arbitrary field sequences.
    #[test]
    fn bitio_roundtrips(fields in proptest::collection::vec((0u64..u32::MAX as u64, 1u32..33), 1..64)) {
        let mut writer = BitWriter::new();
        for (value, width) in &fields {
            let masked = value & ((1u64 << width) - 1);
            writer.write_bits(masked, *width);
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for (value, width) in &fields {
            let masked = value & ((1u64 << width) - 1);
            prop_assert_eq!(reader.read_bits(*width).unwrap(), masked);
        }
    }

    /// Every macro I/O index decodes back to the I/O that produced it, for
    /// any supported channel width and LUT size.
    #[test]
    fn macro_io_index_roundtrip(w in 2u16..40, k in 2u8..9, idx_seed in 0u32..10_000) {
        let spec = ArchSpec::new(w, k).unwrap();
        let idx = idx_seed % spec.macro_io_count();
        let io = MacroIo::from_index(&spec, idx).unwrap();
        prop_assert_eq!(io.index(&spec), idx);
    }

    /// Cluster I/O numbering is a bijection for every cluster size.
    #[test]
    fn cluster_io_index_roundtrip(w in 2u16..24, cluster in 1u16..5, idx_seed in 0u32..100_000) {
        let spec = ArchSpec::new(w, 6).unwrap();
        let idx = idx_seed % ClusterIo::io_count(&spec, cluster);
        let io = ClusterIo::from_index(&spec, cluster, idx).unwrap();
        prop_assert_eq!(io.index(&spec, cluster), idx);
    }

    /// Equation (1) never undercounts: the raw frame is always strictly
    /// larger than the logic section and grows monotonically with W.
    #[test]
    fn equation_1_is_monotone(w in 2u16..128, k in 2u8..9) {
        let spec = ArchSpec::new(w, k).unwrap();
        prop_assert!(spec.raw_bits_per_macro() > spec.lb_config_bits());
        if w > 2 {
            let smaller = ArchSpec::new(w - 1, k).unwrap();
            prop_assert!(spec.raw_bits_per_macro() > smaller.raw_bits_per_macro());
        }
        // The break-even point of Section II-B is always at least one
        // connection: coding a single route never loses against raw.
        prop_assert!(spec.break_even_connections() >= 1);
    }

    /// Truth tables evaluate consistently with their entry encoding.
    #[test]
    fn truth_table_eval_matches_entries(bits in proptest::collection::vec(any::<bool>(), 64), probe in 0usize..64) {
        let table = TruthTable::from_bits(6, bits.iter().copied());
        let inputs: Vec<bool> = (0..6).map(|i| (probe >> i) & 1 == 1).collect();
        prop_assert_eq!(table.evaluate(&inputs), bits[probe]);
    }

    /// Widening a truth table never changes the function on the original
    /// inputs.
    #[test]
    fn truth_table_widen_preserves_function(bits in proptest::collection::vec(any::<bool>(), 16), probe in 0usize..16) {
        let narrow = TruthTable::from_bits(4, bits.iter().copied());
        let wide = narrow.widen(6);
        let inputs: Vec<bool> = (0..4).map(|i| (probe >> i) & 1 == 1).collect();
        prop_assert_eq!(wide.evaluate(&inputs), narrow.evaluate(&inputs));
    }

    /// An empty VBS serializes and parses back for any task shape, and its
    /// size accounting matches the byte length.
    #[test]
    fn empty_vbs_roundtrips(w in 1u16..64, h in 1u16..64, cluster in 1u16..5) {
        prop_assume!(cluster <= w.max(h));
        let spec = ArchSpec::paper_evaluation();
        let vbs = Vbs::new(spec, cluster, w, h, Vec::new()).unwrap();
        let bytes = vbs.to_bytes();
        prop_assert_eq!(bytes.len(), (vbs.size_bits() as usize).div_ceil(8));
        prop_assert_eq!(Vbs::from_bytes(&bytes).unwrap(), vbs);
    }

    /// Rectangle intersection is symmetric and consistent with containment.
    #[test]
    fn rect_intersection_properties(ax in 0u16..32, ay in 0u16..32, aw in 1u16..16, ah in 1u16..16,
                                     bx in 0u16..32, by in 0u16..32, bw in 1u16..16, bh in 1u16..16) {
        use vbs_repro::arch::Rect;
        let a = Rect::new(Coord::new(ax, ay), aw, ah);
        let b = Rect::new(Coord::new(bx, by), bw, bh);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
        // A rectangle always intersects itself and contains itself.
        prop_assert!(a.intersects(&a));
        prop_assert!(a.contains_rect(&a));
    }

    /// Sides: opposite is an involution and preserves the channel axis.
    #[test]
    fn side_opposite_involution(side_idx in 0usize..4) {
        let side = Side::ALL[side_idx];
        prop_assert_eq!(side.opposite().opposite(), side);
        prop_assert_eq!(side.is_horizontal(), side.opposite().is_horizontal());
    }

    /// Arbitrary load/unload/relocate/evict/compact sequences through the
    /// scheduler keep the fabric consistent: no two loaded regions
    /// intersect, every loaded region is in bounds, nothing is configured
    /// outside a loaded region, and the memory is blank once everything is
    /// unloaded.
    #[test]
    fn scheduler_sequences_preserve_fabric_invariants(
        policy_idx in 0usize..3,
        evict_idx in 0usize..2,
        ops in proptest::collection::vec((0u8..5, 0u8..4, 0u16..10, 0u16..8), 1..24),
    ) {
        let policy: Box<dyn PlacementPolicy> = match policy_idx {
            0 => Box::new(FirstFit),
            1 => Box::new(BestFit),
            _ => Box::new(BottomLeftSkyline),
        };
        let device = Device::new(ArchSpec::new(9, 6).unwrap(), 9, 7).unwrap();
        let manager = TaskManager::new(
            ReconfigurationController::new(device),
            sched_repository().clone(),
        )
        .with_policy(policy);
        let eviction: Box<dyn vbs_repro::sched::EvictionPolicy> = if evict_idx == 0 {
            Box::new(LruEviction)
        } else {
            Box::new(PriorityEviction)
        };
        let mut sched = Scheduler::with_config(
            manager,
            eviction,
            SchedulerConfig {
                eviction_limit: 2,
                compaction: true,
                ..SchedulerConfig::default()
            },
        );

        let mut jobs: Vec<u64> = Vec::new();
        for (tick, &(op, priority, x, y)) in ops.iter().enumerate() {
            sched.advance_to(tick as u64);
            match op {
                0 | 1 => {
                    let task = if op == 0 { "tiny" } else { "small" };
                    let outcome = sched.execute(Request::Load {
                        task: task.into(),
                        priority,
                        deadline: None,
                    });
                    if let Outcome::Loaded { job, .. } = outcome {
                        jobs.push(job);
                    }
                }
                2 => {
                    if !jobs.is_empty() {
                        let job = jobs[(x as usize + y as usize) % jobs.len()];
                        sched.execute(Request::Unload { job });
                    }
                }
                3 => {
                    if !jobs.is_empty() {
                        let job = jobs[(x as usize) % jobs.len()];
                        // May fail (busy/out of bounds) — invariants must
                        // hold either way.
                        sched.execute(Request::Relocate { job, to: Coord::new(x, y) });
                    }
                }
                _ => {
                    sched.compact();
                }
            }
            assert_fabric_invariants(&sched);
        }

        // Drain everything: the fabric must come back blank.
        for info in sched.residents() {
            sched.execute(Request::Unload { job: info.job });
        }
        assert_fabric_invariants(&sched);
        prop_assert_eq!(sched.manager().controller().memory().occupied_macros(), 0);
        let view = sched.manager().fabric_view();
        prop_assert_eq!(view.free_area(), 9 * 7);
        prop_assert_eq!(view.fragmentation(), 0.0);
    }
}
