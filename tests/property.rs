//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use vbs_repro::arch::{ArchSpec, Coord, MacroIo, Side};
use vbs_repro::netlist::TruthTable;
use vbs_repro::vbs::bitio::{BitReader, BitWriter};
use vbs_repro::vbs::{ClusterIo, Vbs};

proptest! {
    /// Bit-level serialization is lossless for arbitrary field sequences.
    #[test]
    fn bitio_roundtrips(fields in proptest::collection::vec((0u64..u32::MAX as u64, 1u32..33), 1..64)) {
        let mut writer = BitWriter::new();
        for (value, width) in &fields {
            let masked = value & ((1u64 << width) - 1);
            writer.write_bits(masked, *width);
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for (value, width) in &fields {
            let masked = value & ((1u64 << width) - 1);
            prop_assert_eq!(reader.read_bits(*width).unwrap(), masked);
        }
    }

    /// Every macro I/O index decodes back to the I/O that produced it, for
    /// any supported channel width and LUT size.
    #[test]
    fn macro_io_index_roundtrip(w in 2u16..40, k in 2u8..9, idx_seed in 0u32..10_000) {
        let spec = ArchSpec::new(w, k).unwrap();
        let idx = idx_seed % spec.macro_io_count();
        let io = MacroIo::from_index(&spec, idx).unwrap();
        prop_assert_eq!(io.index(&spec), idx);
    }

    /// Cluster I/O numbering is a bijection for every cluster size.
    #[test]
    fn cluster_io_index_roundtrip(w in 2u16..24, cluster in 1u16..5, idx_seed in 0u32..100_000) {
        let spec = ArchSpec::new(w, 6).unwrap();
        let idx = idx_seed % ClusterIo::io_count(&spec, cluster);
        let io = ClusterIo::from_index(&spec, cluster, idx).unwrap();
        prop_assert_eq!(io.index(&spec, cluster), idx);
    }

    /// Equation (1) never undercounts: the raw frame is always strictly
    /// larger than the logic section and grows monotonically with W.
    #[test]
    fn equation_1_is_monotone(w in 2u16..128, k in 2u8..9) {
        let spec = ArchSpec::new(w, k).unwrap();
        prop_assert!(spec.raw_bits_per_macro() > spec.lb_config_bits());
        if w > 2 {
            let smaller = ArchSpec::new(w - 1, k).unwrap();
            prop_assert!(spec.raw_bits_per_macro() > smaller.raw_bits_per_macro());
        }
        // The break-even point of Section II-B is always at least one
        // connection: coding a single route never loses against raw.
        prop_assert!(spec.break_even_connections() >= 1);
    }

    /// Truth tables evaluate consistently with their entry encoding.
    #[test]
    fn truth_table_eval_matches_entries(bits in proptest::collection::vec(any::<bool>(), 64), probe in 0usize..64) {
        let table = TruthTable::from_bits(6, bits.iter().copied());
        let inputs: Vec<bool> = (0..6).map(|i| (probe >> i) & 1 == 1).collect();
        prop_assert_eq!(table.evaluate(&inputs), bits[probe]);
    }

    /// Widening a truth table never changes the function on the original
    /// inputs.
    #[test]
    fn truth_table_widen_preserves_function(bits in proptest::collection::vec(any::<bool>(), 16), probe in 0usize..16) {
        let narrow = TruthTable::from_bits(4, bits.iter().copied());
        let wide = narrow.widen(6);
        let inputs: Vec<bool> = (0..4).map(|i| (probe >> i) & 1 == 1).collect();
        prop_assert_eq!(wide.evaluate(&inputs), narrow.evaluate(&inputs));
    }

    /// An empty VBS serializes and parses back for any task shape, and its
    /// size accounting matches the byte length.
    #[test]
    fn empty_vbs_roundtrips(w in 1u16..64, h in 1u16..64, cluster in 1u16..5) {
        prop_assume!(cluster <= w.max(h));
        let spec = ArchSpec::paper_evaluation();
        let vbs = Vbs::new(spec, cluster, w, h, Vec::new()).unwrap();
        let bytes = vbs.to_bytes();
        prop_assert_eq!(bytes.len(), (vbs.size_bits() as usize).div_ceil(8));
        prop_assert_eq!(Vbs::from_bytes(&bytes).unwrap(), vbs);
    }

    /// Rectangle intersection is symmetric and consistent with containment.
    #[test]
    fn rect_intersection_properties(ax in 0u16..32, ay in 0u16..32, aw in 1u16..16, ah in 1u16..16,
                                     bx in 0u16..32, by in 0u16..32, bw in 1u16..16, bh in 1u16..16) {
        use vbs_repro::arch::Rect;
        let a = Rect::new(Coord::new(ax, ay), aw, ah);
        let b = Rect::new(Coord::new(bx, by), bw, bh);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
        // A rectangle always intersects itself and contains itself.
        prop_assert!(a.intersects(&a));
        prop_assert!(a.contains_rect(&a));
    }

    /// Sides: opposite is an involution and preserves the channel axis.
    #[test]
    fn side_opposite_involution(side_idx in 0usize..4) {
        let side = Side::ALL[side_idx];
        prop_assert_eq!(side.opposite().opposite(), side);
        prop_assert_eq!(side.is_horizontal(), side.opposite().is_horizontal());
    }
}
