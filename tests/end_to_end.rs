//! Integration tests spanning the whole workspace: flow → raw bit-stream →
//! VBS → de-virtualization → functional verification → relocation.

use std::collections::HashMap;
use vbs_repro::arch::{ArchSpec, Coord, Device, Rect};
use vbs_repro::fabric_sim::{evaluate, evaluate_netlist, verify_against_netlist};
use vbs_repro::flow::CadFlow;
use vbs_repro::netlist::generate::SyntheticSpec;
use vbs_repro::netlist::Netlist;
use vbs_repro::runtime::{ReconfigurationController, TaskManager, VbsRepository};
use vbs_repro::vbs::{decode, Vbs, VbsStats};

fn small_netlist(seed: u64) -> Netlist {
    SyntheticSpec::new("e2e", 36, 6, 6)
        .with_seed(seed)
        .build()
        .expect("netlist generation")
}

#[test]
fn flow_vbs_roundtrip_is_bit_exact_at_finest_grain() {
    let netlist = small_netlist(1);
    let result = CadFlow::new(10, 6)
        .unwrap()
        .with_grid(8, 8)
        .with_seed(1)
        .fast()
        .run(&netlist)
        .unwrap();
    let vbs = result.vbs(1).unwrap();
    assert!(vbs.size_bits() < result.raw_bitstream().size_bits());
    let decoded = decode(&vbs).unwrap();
    assert_eq!(decoded.diff_count(result.raw_bitstream()).unwrap(), 0);
}

#[test]
fn decoded_clustered_streams_implement_the_netlist() {
    let netlist = small_netlist(2);
    let result = CadFlow::new(10, 6)
        .unwrap()
        .with_grid(8, 8)
        .with_seed(2)
        .fast()
        .run(&netlist)
        .unwrap();
    for cluster in [1u16, 2, 3, 4] {
        let vbs = result.vbs(cluster).unwrap();
        let decoded = decode(&vbs).unwrap();
        // The decoded configuration may legitimately differ bit-for-bit from
        // the original for k >= 2 (interior routes are re-derived), but it
        // must implement the same circuit: same connectivity, same logic,
        // no shorts.
        verify_against_netlist(&decoded, &netlist, result.placement())
            .unwrap_or_else(|e| panic!("cluster {cluster}: {e}"));
    }
}

#[test]
fn clustering_internalizes_connections_and_still_compresses() {
    // On the paper's large, dense circuits clustering shrinks the stream
    // further (Figure 5); on a tiny test circuit the k^2 logic payload can
    // offset that, so here we assert the structural effect (far fewer coded
    // connections) and that both grains stay below the raw size.
    let netlist = small_netlist(3);
    let result = CadFlow::paper_evaluation()
        .with_grid(8, 8)
        .with_seed(3)
        .fast()
        .run(&netlist)
        .unwrap();
    let s1 = VbsStats::of(&result.vbs(1).unwrap());
    let s2 = VbsStats::of(&result.vbs(2).unwrap());
    assert!(
        s1.ratio() < 1.0,
        "finest grain must compress (got {})",
        s1.ratio()
    );
    assert!(
        s2.ratio() < 1.0,
        "2x2 clusters must compress (got {})",
        s2.ratio()
    );
    assert!(
        s2.connections < s1.connections,
        "clustering must internalize connections ({} !< {})",
        s2.connections,
        s1.connections
    );
}

#[test]
fn functional_behaviour_survives_encode_decode() {
    let netlist = SyntheticSpec::new("func", 20, 5, 4)
        .with_seed(4)
        .with_registered_fraction(0.0)
        .build()
        .unwrap();
    let result = CadFlow::new(9, 6)
        .unwrap()
        .with_grid(6, 6)
        .with_seed(4)
        .fast()
        .run(&netlist)
        .unwrap();
    let vbs = result.vbs(2).unwrap();
    let decoded = decode(&vbs).unwrap();
    for pattern in 0u32..8 {
        let inputs: HashMap<String, bool> = (0..netlist.input_count())
            .map(|i| (format!("pi_{i}"), (pattern >> (i % 3)) & 1 == 1))
            .collect();
        let golden = evaluate_netlist(&netlist, &inputs).unwrap();
        let from_decoded = evaluate(&decoded, &netlist, result.placement(), &inputs).unwrap();
        assert_eq!(golden, from_decoded, "pattern {pattern}");
    }
}

#[test]
fn serialized_vbs_survives_storage_and_relocation() {
    let netlist = small_netlist(5);
    let result = CadFlow::new(10, 6)
        .unwrap()
        .with_grid(8, 8)
        .with_seed(5)
        .fast()
        .run(&netlist)
        .unwrap();
    let vbs = result.vbs(1).unwrap();

    // Through bytes (the external memory of Figure 2).
    let restored = Vbs::from_bytes(&vbs.to_bytes()).unwrap();
    assert_eq!(restored, vbs);

    // Through the run-time stack, at two different positions.
    let device = Device::new(ArchSpec::new(10, 6).unwrap(), 20, 18).unwrap();
    let mut repo = VbsRepository::new();
    repo.store("task", &vbs);
    let mut manager =
        TaskManager::new(ReconfigurationController::new(device).with_workers(2), repo);
    let handle = manager.load_at("task", Coord::new(2, 3)).unwrap();
    let first = manager
        .controller()
        .memory()
        .read_region(Rect::new(Coord::new(2, 3), vbs.width(), vbs.height()))
        .unwrap();
    assert_eq!(first.diff_count(result.raw_bitstream()).unwrap(), 0);

    manager.relocate(handle, Coord::new(11, 9)).unwrap();
    let second = manager
        .controller()
        .memory()
        .read_region(Rect::new(Coord::new(11, 9), vbs.width(), vbs.height()))
        .unwrap();
    assert_eq!(second.diff_count(&first).unwrap(), 0);
}

#[test]
fn paper_example_constants_hold_end_to_end() {
    // The W = 5 example of Section II-B: 284 raw bits per macro, 5-bit I/O
    // identifiers, 28-connection break-even point.
    let spec = ArchSpec::paper_example();
    assert_eq!(spec.raw_bits_per_macro(), 284);
    assert_eq!(spec.io_index_bits(), 5);
    assert_eq!(spec.break_even_connections(), 28);
    // And the evaluation architecture used by every experiment binary.
    let eval = ArchSpec::paper_evaluation();
    assert_eq!(eval.channel_width(), 20);
    assert_eq!(eval.lut_size(), 6);
}

#[test]
fn mcnc_calibrated_circuit_flows_at_reduced_scale() {
    let circuit = vbs_repro::netlist::mcnc::by_name("tseng").unwrap();
    let netlist = circuit.build_scaled(0.1).unwrap();
    let edge = circuit.scaled_size(0.1);
    let result = CadFlow::paper_evaluation()
        .with_grid(edge, edge)
        .with_seed(circuit.seed())
        .fast()
        .run(&netlist)
        .unwrap();
    let stats = VbsStats::of(&result.vbs(1).unwrap());
    assert!(
        stats.ratio() < 0.8,
        "MCNC-calibrated circuits compress well: {stats}"
    );
    verify_against_netlist(result.raw_bitstream(), &netlist, result.placement()).unwrap();
}
